// Time-snapshot network graphs. Node ids: satellites first
// [0, num_sats), then ground stations [num_sats, num_sats + num_gs).
// Edges carry geometric distance in km (latency = distance / c). Ground
// stations are non-transit by default (they terminate paths); bent-pipe
// relay experiments mark specific GSes as relays.
//
// Storage is a flat CSR layout (DESIGN.md "Snapshot and routing memory
// layout"): one offsets array plus one packed {to, distance_km} edge
// array, so a Dijkstra relaxation walks contiguous memory instead of
// chasing one heap block per node. Edges added through
// add_undirected_edge are staged and compacted into CSR on first read
// (stable per-node insertion order, so iteration order — and therefore
// every tie-break downstream — matches the historical adjacency-list
// behaviour byte for byte). A second, mutable "overlay" tier holds the
// per-epoch GSL rows for the SnapshotRefresher: the CSR base keeps the
// quasi-static ISL structure while only the overlay churns.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/orbit/ground_station.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/topology/visibility.hpp"
#include "src/util/units.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::route {

struct Edge {
    int to = 0;
    double distance_km = 0.0;
};

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// CSR snapshot of the LEO network at one instant.
class Graph {
  public:
    /// Contiguous view over one node's CSR row.
    class EdgeSpan {
      public:
        EdgeSpan(const Edge* first, const Edge* last) : first_(first), last_(last) {}
        const Edge* begin() const { return first_; }
        const Edge* end() const { return last_; }
        std::size_t size() const { return static_cast<std::size_t>(last_ - first_); }
        bool empty() const { return first_ == last_; }
        const Edge& operator[](std::size_t i) const { return first_[i]; }

      private:
        const Edge* first_;
        const Edge* last_;
    };

    Graph(int num_satellites, int num_ground_stations);

    int num_nodes() const { return num_nodes_; }
    int num_satellites() const { return num_satellites_; }
    int num_ground_stations() const { return num_nodes_ - num_satellites_; }
    int gs_node(int gs_index) const { return num_satellites_ + gs_index; }
    bool is_ground_station(int node) const { return node >= num_satellites_; }

    /// Stages an edge; the CSR arrays are (re)built lazily on the next
    /// read. Throws if the overlay tier is enabled (a refresher-owned
    /// graph has a frozen base structure).
    void add_undirected_edge(int a, int b, double distance_km);
    /// Reserves staging capacity for `undirected` edges (2x directed).
    void reserve_edges(std::size_t undirected);

    /// The node's base (CSR) row. Finalizes lazily — the first read
    /// after a mutation is not thread-safe; finalize() first when
    /// handing the graph to parallel readers. Overlay edges are NOT
    /// included; full iteration goes through for_each_neighbor.
    EdgeSpan neighbors(int node) const {
        if (dirty_) finalize();
        return {edges_.data() + offsets_[static_cast<std::size_t>(node)],
                edges_.data() + offsets_[static_cast<std::size_t>(node) + 1]};
    }

    /// Visits every edge out of `node`: the CSR base row first, then the
    /// overlay row (matching build_snapshot's historical insertion
    /// order: ISLs, then GSLs in ascending GS order).
    template <typename Fn>
    void for_each_neighbor(int node, Fn&& fn) const {
        for (const Edge& e : neighbors(node)) fn(e);
        if (overlay_enabled_) {
            for (const Edge& e : overlay_[static_cast<std::size_t>(node)]) fn(e);
        }
    }

    /// Undirected edge count across base + overlay. O(1): maintained by
    /// add_undirected_edge / set_overlay_undirected_edges, never
    /// recounted.
    std::size_t num_edges() const { return base_undirected_ + overlay_undirected_; }

    /// Compacts staged edges into the CSR arrays (no-op when clean).
    /// Must be called (or a first read made) on a single thread before
    /// the graph is shared with parallel readers.
    void finalize() const;

    // --- refresher support (base structure frozen, weights mutable) ----
    /// Index into the packed edge array of the directed edge from -> to.
    /// Requires a finalized graph; throws std::out_of_range if absent.
    std::size_t directed_edge_index(int from, int to) const;
    /// Overwrites the weight of one directed edge slot in place. Only
    /// meaningful on a structure-frozen (overlay-enabled) graph: a later
    /// add_undirected_edge would rebuild the CSR from staging and drop
    /// the patch, which is why the two are mutually exclusive.
    void set_edge_distance(std::size_t directed_index, double distance_km) {
        edges_[directed_index].distance_km = distance_km;
    }

    /// Switches on the mutable overlay tier and freezes the base
    /// structure. Idempotent.
    void enable_overlay();
    bool has_overlay() const { return overlay_enabled_; }
    std::vector<Edge>& overlay_row(int node) {
        return overlay_[static_cast<std::size_t>(node)];
    }
    const std::vector<Edge>& overlay(int node) const {
        return overlay_[static_cast<std::size_t>(node)];
    }
    /// The refresher recounts its GSL rows after each delta patch.
    void set_overlay_undirected_edges(std::size_t n) { overlay_undirected_ = n; }

    /// Whether a node may forward traffic that neither originates nor
    /// terminates at it. Satellites always relay.
    bool can_relay(int node) const { return relay_[static_cast<std::size_t>(node)]; }
    void set_relay(int node, bool relay) {
        relay_[static_cast<std::size_t>(node)] = relay;
    }
    /// Raw relay flags (one char per node), for flattened routing views.
    const char* relay_data() const { return relay_.data(); }

    /// Packs base + overlay rows into one merged CSR (offsets holds
    /// num_nodes + 1 entries), each row in for_each_neighbor order.
    /// A snapshot of the graph's current weights: the routing fan-out
    /// reads the copy, so one flatten amortizes over every
    /// per-destination Dijkstra of the epoch and the hot loop loses the
    /// per-node overlay indirection. Finalizes lazily like any read.
    void export_merged_csr(std::vector<std::int32_t>& offsets,
                           std::vector<Edge>& edges) const;

    // --- node positions (A* heuristic support) -------------------------
    /// Per-node ECEF positions (km) at the snapshot instant, satellites
    /// then ground stations. Filled by the snapshot builders and the
    /// refresher; edge weights are Euclidean distances between exactly
    /// these points, which is what makes the straight-line A* bound
    /// admissible. Resizes the buffer to num_nodes on first use.
    std::vector<Vec3>& mutable_node_positions() {
        node_positions_.resize(static_cast<std::size_t>(num_nodes_));
        return node_positions_;
    }
    /// Raw position array for routing views, or nullptr when the graph
    /// was built without positions (hand-assembled test graphs).
    const Vec3* node_positions_data() const {
        return node_positions_.empty() ? nullptr : node_positions_.data();
    }

  private:
    int num_satellites_;
    int num_nodes_;
    std::size_t base_undirected_ = 0;
    std::size_t overlay_undirected_ = 0;

    // Staging (source of truth for the base structure) + compacted CSR.
    std::vector<std::int32_t> pending_from_;
    std::vector<Edge> pending_edges_;
    mutable bool dirty_ = true;
    mutable std::vector<std::int32_t> offsets_;  // num_nodes_ + 1
    mutable std::vector<Edge> edges_;            // packed, grouped by source

    bool overlay_enabled_ = false;
    std::vector<std::vector<Edge>> overlay_;

    std::vector<char> relay_;
    std::vector<Vec3> node_positions_;  // empty until a builder fills it
};

/// Options controlling snapshot construction.
struct SnapshotOptions {
    bool include_isls = true;
    /// Extra ground stations allowed to relay (bent-pipe GS relays).
    std::vector<int> relay_gs_indices;
    /// Paper section 3.1(c): a GS either connects to all connectable
    /// satellites (default) or only to its nearest one (user-terminal
    /// style single phased-array behaviour).
    bool gs_nearest_satellite_only = false;
    /// Optional weather / link-budget hook: scales the maximum GSL range
    /// of ground station `gs_index` at time `t` (1.0 = clear sky; rain
    /// fade shrinks the usable cone). Section 7's weather-model extension.
    std::function<double(int gs_index, TimeNs t)> gsl_range_factor;
    /// Optional fault mask (must outlive the snapshot/refresher; nullptr
    /// or an empty schedule disables it). Failed elements are excluded
    /// identically in rebuild and refresh modes:
    ///   * a cut ISL, or an ISL with a dead endpoint, keeps its edge
    ///     slot but carries kInfDistance — an infinite-weight edge never
    ///     relaxes in Dijkstra (inf < inf is false), so every routing
    ///     output is byte-identical to the edge being absent while the
    ///     refresher's frozen CSR base structure is preserved;
    ///   * GSLs of a dead satellite or a ground station in outage are
    ///     excluded structurally (the GSL tier is rebuilt per epoch
    ///     anyway). In nearest-satellite-only mode a GS whose nearest
    ///     satellite is dead falls through to the nearest *alive* one —
    ///     a dead satellite is simply not there to associate with,
    ///     unlike a weather-shrunk cone, which disconnects the GS.
    const fault::FaultSchedule* faults = nullptr;
};

/// Builds the graph at simulation time `t`: ISL edges with current
/// satellite separation, plus GSL edges from every GS to every satellite
/// above its minimum elevation angle. The returned graph is finalized
/// (safe to share with parallel readers).
Graph build_snapshot(const topo::SatelliteMobility& mobility,
                     const std::vector<topo::Isl>& isls,
                     const std::vector<orbit::GroundStation>& ground_stations, TimeNs t,
                     const SnapshotOptions& options = {});

}  // namespace hypatia::route
