// Time-snapshot network graphs. Node ids: satellites first
// [0, num_sats), then ground stations [num_sats, num_sats + num_gs).
// Edges carry geometric distance in km (latency = distance / c). Ground
// stations are non-transit by default (they terminate paths); bent-pipe
// relay experiments mark specific GSes as relays.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "src/orbit/ground_station.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/topology/visibility.hpp"
#include "src/util/units.hpp"

namespace hypatia::route {

struct Edge {
    int to = 0;
    double distance_km = 0.0;
};

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Adjacency-list snapshot of the LEO network at one instant.
class Graph {
  public:
    Graph(int num_satellites, int num_ground_stations);

    int num_nodes() const { return static_cast<int>(adj_.size()); }
    int num_satellites() const { return num_satellites_; }
    int num_ground_stations() const { return num_nodes() - num_satellites_; }
    int gs_node(int gs_index) const { return num_satellites_ + gs_index; }
    bool is_ground_station(int node) const { return node >= num_satellites_; }

    void add_undirected_edge(int a, int b, double distance_km);
    const std::vector<Edge>& neighbors(int node) const { return adj_[node]; }
    std::size_t num_edges() const;  // undirected count

    /// Whether a node may forward traffic that neither originates nor
    /// terminates at it. Satellites always relay.
    bool can_relay(int node) const { return relay_[node]; }
    void set_relay(int node, bool relay) { relay_[node] = relay; }

  private:
    int num_satellites_;
    std::vector<std::vector<Edge>> adj_;
    std::vector<char> relay_;
};

/// Options controlling snapshot construction.
struct SnapshotOptions {
    bool include_isls = true;
    /// Extra ground stations allowed to relay (bent-pipe GS relays).
    std::vector<int> relay_gs_indices;
    /// Paper section 3.1(c): a GS either connects to all connectable
    /// satellites (default) or only to its nearest one (user-terminal
    /// style single phased-array behaviour).
    bool gs_nearest_satellite_only = false;
    /// Optional weather / link-budget hook: scales the maximum GSL range
    /// of ground station `gs_index` at time `t` (1.0 = clear sky; rain
    /// fade shrinks the usable cone). Section 7's weather-model extension.
    std::function<double(int gs_index, TimeNs t)> gsl_range_factor;
};

/// Builds the graph at simulation time `t`: ISL edges with current
/// satellite separation, plus GSL edges from every GS to every satellite
/// above its minimum elevation angle.
Graph build_snapshot(const topo::SatelliteMobility& mobility,
                     const std::vector<topo::Isl>& isls,
                     const std::vector<orbit::GroundStation>& ground_stations, TimeNs t,
                     const SnapshotOptions& options = {});

}  // namespace hypatia::route
