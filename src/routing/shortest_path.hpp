// Shortest-path computation. The workhorse is Dijkstra rooted at a
// *destination* node: it yields, for every node, the distance to the
// destination and the next hop toward it — exactly the forwarding state
// Hypatia installs per time step. Floyd-Warshall (what the paper's
// networkx step uses) is provided for small graphs and as a
// cross-validation oracle; both produce identical distances.
#pragma once

#include <vector>

#include "src/routing/graph.hpp"

namespace hypatia::route {

/// Shortest-path tree rooted at a destination.
struct DestinationTree {
    int destination = 0;
    /// distance_km[u]: shortest distance from u to the destination
    /// (kInfDistance if unreachable).
    std::vector<double> distance_km;
    /// next_hop[u]: first hop on u's shortest path to the destination
    /// (-1 if unreachable or u == destination).
    std::vector<int> next_hop;
};

/// Dijkstra from `destination` over the (undirected) graph, honouring
/// non-transit nodes: a node with can_relay() == false is never expanded
/// (it can start or end a path but not carry through-traffic).
DestinationTree dijkstra_to(const Graph& graph, int destination);

/// Extracts the node sequence from `source` to the tree's destination;
/// empty if unreachable.
std::vector<int> extract_path(const DestinationTree& tree, int source);

/// All-pairs shortest distances by Floyd-Warshall (O(V^3); use only for
/// small graphs / tests). Honors the same non-transit constraint.
std::vector<std::vector<double>> floyd_warshall(const Graph& graph);

}  // namespace hypatia::route
