// Shortest-path computation. The workhorse is Dijkstra rooted at a
// *destination* node: it yields, for every node, the distance to the
// destination and the next hop toward it — exactly the forwarding state
// Hypatia installs per time step. Floyd-Warshall (what the paper's
// networkx step uses) is provided for small graphs and as a
// cross-validation oracle; both produce identical distances.
//
// Dijkstra runs through a reusable workspace (a monotone bucket queue
// plus the output tree's own buffers, all recycled across runs), so a
// multi-epoch pipeline performs zero allocations per run once the
// buffers reach working size. dijkstra_to() wraps the workspace path
// for one-shot callers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/routing/graph.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::route {

/// Flattened routing view over a Graph: one packed CSR holding base and
/// overlay rows merged in for_each_neighbor order, plus the relay
/// flags. Produced by Graph::export_merged_csr once per epoch so the
/// per-destination Dijkstra fan-out walks a single edge array with no
/// per-node overlay indirection. Pointers borrow from the owning
/// buffers; the view is valid only while they are.
struct GraphView {
    const std::int32_t* offsets = nullptr;  // num_nodes + 1 entries
    const Edge* edges = nullptr;
    const char* relay = nullptr;            // one flag per node
    /// Per-node ECEF positions (km), or nullptr when the graph was built
    /// without them. Required for the A* heuristic; a null pointer
    /// silently degrades run_goal to plain Dijkstra.
    const Vec3* positions = nullptr;
    int num_nodes = 0;
};

/// Which search the per-destination fan-out runs. Both produce exact
/// shortest-path trees; kAstar additionally orders the queue by
/// distance-so-far plus an admissible straight-line lower bound to the
/// root set, which prunes stranded duplicates and enables early exit
/// once a caller-supplied target set is settled.
enum class RouteAlgo { kDijkstra, kAstar };

/// HYPATIA_ROUTE_ALGO=astar selects A*; "dijkstra", unset, or anything
/// else selects Dijkstra (the byte-stable historical default).
RouteAlgo route_algo_from_env();

/// Shortest-path tree rooted at a destination.
struct DestinationTree {
    int destination = 0;
    /// distance_km[u]: shortest distance from u to the destination
    /// (kInfDistance if unreachable).
    std::vector<double> distance_km;
    /// next_hop[u]: first hop on u's shortest path to the destination
    /// (-1 if unreachable or u == destination).
    std::vector<int> next_hop;
};

/// Reusable Dijkstra scratch built around a two-level monotone bucket
/// queue (a calendar queue): pending nodes are binned by distance into
/// 512 km coarse buckets, the coarse bucket at the cursor is expanded
/// into 8 km fine buckets, and each extraction ctz-scans a 64-bit
/// occupancy mask and then a handful of co-binned entries. Unlike a
/// comparison heap — whose sift chains are serial compare-dependent
/// loads that dominate the routing precompute — bucket extraction has
/// no data-dependent chains longer than one tiny scan, which is where
/// the epoch-pipeline speedup comes from. Keys outside the 64-bucket
/// horizon overflow into a spill list and are re-binned when the cursor
/// reaches them, so any key magnitude is handled (absurd magnitudes
/// degrade to linear scans, never to unsafety).
///
/// run() writes into the output tree's existing buffers, so a workspace
/// + tree pair reused across epochs allocates nothing once bucket
/// capacities reach their working size. One workspace serves one thread
/// at a time; thread_dijkstra_workspace() hands out a lane-local
/// instance for parallel fan-outs.
class DijkstraWorkspace {
  public:
    /// Dijkstra from `destination` over the (undirected) graph,
    /// honouring non-transit nodes: a node with can_relay() == false is
    /// never expanded (it can start or end a path but not carry
    /// through-traffic), and is therefore never queued at all — its
    /// distance/next_hop writes do not depend on queue membership.
    /// Edge weights must be non-negative (geometric distances are).
    ///
    /// Results are byte-identical to any conforming implementation
    /// (including the historical lazy-insertion binary heap): every
    /// extraction takes the exact minimum under the lexicographic
    /// (distance, node) total order — the bucket bins are a monotone
    /// coarsening of that order and the final intra-bucket scan applies
    /// it exactly — so the settle sequence, and with it every
    /// next_hop tie-break, is implementation-independent.
    void run(const Graph& graph, int destination, DestinationTree& out);

    /// Same algorithm over a flattened view (byte-identical results —
    /// the merged rows preserve for_each_neighbor order).
    void run(const GraphView& view, int destination, DestinationTree& out);

    /// Goal-directed multi-source search parameters for run_goal().
    struct GoalSpec {
        /// Root node set (all at distance 0). One root reproduces the
        /// classic per-destination tree; several roots compute exact
        /// distance-to-nearest-root (destination clustering).
        const int* roots = nullptr;
        int num_roots = 0;
        /// Optional early-exit set (A* only): once every listed node is
        /// settled the search stops — the tree rows reachable through
        /// them (in particular source ground stations attached to these
        /// satellites) are final at that point. Empty = run to
        /// exhaustion, which makes the output arrays byte-identical to
        /// Dijkstra's.
        const int* targets = nullptr;
        int num_targets = 0;
        RouteAlgo algo = RouteAlgo::kDijkstra;
    };

    /// Exact shortest-path tree from a root set, optionally goal-
    /// directed. With algo == kDijkstra and one root this is run()
    /// (byte-identical outputs, including next_hop tie-breaks). With
    /// kAstar the pop order is f = g + h with h(v) the Euclidean chord
    /// from v to the nearest root scaled by (1 - 1e-9): edge weights are
    /// 3D straight-line distances, so the chord obeys the triangle
    /// inequality (admissible and consistent) and the scale absorbs
    /// floating-point rounding in h itself; settled distances are exact,
    /// so dist/next_hop match Dijkstra's everywhere the search reached.
    /// out.destination is set to roots[0].
    void run_goal(const GraphView& view, const GoalSpec& spec,
                  DestinationTree& out);

    /// Statistics from the most recent run on this workspace.
    std::uint64_t last_pops() const { return last_pops_; }
    std::uint64_t last_settled() const { return last_settled_; }
    bool last_early_exit() const { return last_early_exit_; }

  private:
    template <typename NeighborsFn, typename RelayFn>
    void run_core(int num_nodes, int destination, NeighborsFn&& neighbors_of,
                  RelayFn&& relay, DestinationTree& out);

    struct Item {
        double key;          // distance to the destination, km
        std::int32_t node;
    };
    static constexpr double kCoarseWidthKm = 512.0;
    static constexpr double kFineWidthKm = 8.0;  // kCoarseWidthKm / 64

    void push(double key, std::int32_t node);
    Item pop_min();

    void reset_queue();

    std::vector<Item> coarse_[64];  // coarse_origin_ .. +64 coarse bins
    std::vector<Item> fine_[64];    // expansion of bin fine_base_
    std::vector<Item> overflow_;    // keys beyond the coarse horizon
    std::vector<Item> spill_;       // rebase scratch, reused across pops
    std::uint64_t coarse_mask_ = 0;
    std::uint64_t fine_mask_ = 0;
    std::int64_t coarse_origin_ = 0;  // absolute index of coarse_[0]
    std::int64_t fine_base_ = -1;     // absolute index expanded into fine_
    double horizon_km_ = 0.0;         // (coarse_origin_ + 64) * kCoarseWidthKm
    double fine_base_km_ = 0.0;       // fine_base_ * kCoarseWidthKm
    std::size_t live_ = 0;

    // run_goal scratch, recycled across snapshots (geometric growth via
    // vector capacity; assign() never shrinks).
    std::vector<char> settled_;
    std::vector<char> is_target_;
    std::vector<Vec3> root_pos_;
    std::vector<double> h_cache_;  // per-run h(v) memo; -1 = not yet computed
    std::uint64_t last_pops_ = 0;
    std::uint64_t last_settled_ = 0;
    bool last_early_exit_ = false;
};

/// The calling thread's workspace (thread_local: pool workers each own
/// one that persists across epochs, the caller thread likewise).
DijkstraWorkspace& thread_dijkstra_workspace();

/// One-shot Dijkstra into a freshly allocated tree (workspace-backed).
DestinationTree dijkstra_to(const Graph& graph, int destination);

/// Extracts the node sequence from `source` to the tree's destination;
/// empty if unreachable. For a multi-root tree (run_goal with several
/// roots) the walk ends at whichever root the chain reaches: roots are
/// the only reachable nodes with next_hop == -1, and distances strictly
/// decrease along the chain, so the walk terminates there even when that
/// root differs from tree.destination.
std::vector<int> extract_path(const DestinationTree& tree, int source);

/// All-pairs shortest distances by Floyd-Warshall (O(V^3); use only for
/// small graphs / tests). Honors the same non-transit constraint.
std::vector<std::vector<double>> floyd_warshall(const Graph& graph);

}  // namespace hypatia::route
