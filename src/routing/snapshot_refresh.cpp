#include "src/routing/snapshot_refresh.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/obs/observability.hpp"
#include "src/obs/recorder.hpp"
#include "src/topology/visibility.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::route {

namespace {

// Cull-bound decay: a satellite measured slack_km beyond the horizon
// bound cannot close the gap faster than ~15.2 km/s (1000/66 ms per km).
// ECEF closing speed on a fixed ground station is bounded by the
// satellite's ECEF speed: LEO orbital velocity (< 7.8 km/s for every
// shell in the catalog) plus Earth-rotation carry (< 0.6 km/s), so the
// constant carries an ~80% safety margin. Within the bound's window the
// satellite provably still fails the scan's cheap-rejection test, so
// skipping it cannot change any output byte.
constexpr double kCullMsPerKm = 66.0;

// Refresh times at/beyond this can't be tracked in the 32-bit ms bound
// array; culling simply switches off (every pair rechecked each epoch).
constexpr TimeNs kCullHorizonNs = TimeNs{0xf0000000} * 1'000'000;

}  // namespace

SnapshotMode snapshot_mode_from_env() {
    const char* v = std::getenv("HYPATIA_SNAPSHOT_MODE");
    if (v != nullptr && std::strcmp(v, "rebuild") == 0) return SnapshotMode::kRebuild;
    return SnapshotMode::kRefresh;
}

SnapshotRefresher::SnapshotRefresher(
    const topo::SatelliteMobility& mobility, const std::vector<topo::Isl>& isls,
    const std::vector<orbit::GroundStation>& ground_stations, SnapshotOptions options)
    : mobility_(&mobility),
      isls_(&isls),
      ground_stations_(&ground_stations),
      options_(std::move(options)),
      num_sats_(mobility.num_satellites()),
      graph_(mobility.num_satellites(), static_cast<int>(ground_stations.size())) {
    horizon_range_km_ = topo::horizon_range_km(mobility);
    shell_max_range_km_ = mobility.constellation().params().max_gsl_range_km();
    init();
}

SnapshotRefresher::SnapshotRefresher(
    const topo::ShellGroup& group,
    const std::vector<orbit::GroundStation>& ground_stations, SnapshotOptions options)
    : mobility_(nullptr),
      group_(&group),
      isls_(&group.isls()),
      ground_stations_(&ground_stations),
      options_(std::move(options)),
      num_sats_(group.num_satellites()),
      graph_(group.num_satellites(), static_cast<int>(ground_stations.size())) {
    // The cheap-rejection horizon is the loosest shell's: a satellite
    // beyond it is beyond its own shell's horizon too (its cone range is
    // smaller still), so the shared bound rejects exactly the satellites
    // the per-shell scans would.
    sat_max_range_km_.assign(static_cast<std::size_t>(num_sats_), 0.0);
    for (int s = 0; s < group.num_shells(); ++s) {
        horizon_range_km_ =
            std::max(horizon_range_km_, topo::horizon_range_km(group.mobility(s)));
        const double r = group.constellation(s).params().max_gsl_range_km();
        shell_max_range_km_ = std::max(shell_max_range_km_, r);
        const int n = group.constellation(s).num_satellites();
        for (int local = 0; local < n; ++local) {
            sat_max_range_km_[static_cast<std::size_t>(group.global_id(s, local))] = r;
        }
    }
    init();
}

void SnapshotRefresher::init() {
    // Normalize "no faults" to nullptr so the per-epoch tests reduce to
    // one pointer check (and an empty schedule costs nothing).
    if (options_.faults != nullptr && options_.faults->empty()) {
        options_.faults = nullptr;
    }
    if (options_.include_isls) {
        graph_.reserve_edges(isls_->size());
        // Structure only; the first refresh() fills in real distances.
        for (const auto& isl : *isls_) {
            graph_.add_undirected_edge(isl.sat_a, isl.sat_b, 0.0);
        }
        graph_.finalize();
        isl_slots_.reserve(isls_->size());
        for (const auto& isl : *isls_) {
            isl_slots_.emplace_back(graph_.directed_edge_index(isl.sat_a, isl.sat_b),
                                    graph_.directed_edge_index(isl.sat_b, isl.sat_a));
        }
    }
    graph_.enable_overlay();
    for (int relay_gs : options_.relay_gs_indices) {
        graph_.set_relay(graph_.gs_node(relay_gs), true);
    }

    constexpr double kDegToRad = M_PI / 180.0;
    const std::vector<orbit::GroundStation>& ground_stations = *ground_stations_;
    gs_frames_.reserve(ground_stations.size());
    for (const auto& gs : ground_stations) {
        const double lat = gs.geodetic().latitude_deg * kDegToRad;
        const double lon = gs.geodetic().longitude_deg * kDegToRad;
        const double sin_lat = std::sin(lat), cos_lat = std::cos(lat);
        const double sin_lon = std::sin(lon), cos_lon = std::cos(lon);
        gs_frames_.push_back(
            {gs.ecef(), cos_lat * cos_lon, cos_lat * sin_lon, sin_lat});
    }
    const std::size_t num_gs = ground_stations.size();
    not_before_ms_.assign(num_gs * static_cast<std::size_t>(num_sats_), 0);
    fresh_rows_.resize(num_gs);
    sky_scratch_.resize(num_gs);

    // Ground-station node positions never change; the satellite part of
    // the buffer is (re)filled by every refresh().
    std::vector<Vec3>& pos = graph_.mutable_node_positions();
    for (std::size_t gi = 0; gi < num_gs; ++gi) {
        pos[static_cast<std::size_t>(graph_.gs_node(static_cast<int>(gi)))] =
            ground_stations[gi].ecef();
    }
}

void SnapshotRefresher::scan_gsl_row(int gs_index, TimeNs t, std::uint32_t now_ms,
                                     bool cull, std::vector<Edge>& row) {
    // Reproduces the full visibility scan (topo::visible_satellites_warm
    // -> scan_sky) bit for bit, with two shortcuts that provably change
    // nothing:
    //   * satellites inside an unexpired cull bound are skipped — the
    //     bound certifies they still fail scan_sky's cheap range
    //     rejection;
    //   * the elevation >= 0 listing test reduces to the sign of the
    //     zenith (SEZ) component — asin and the positive rad->deg scale
    //     are sign-exact — so no per-satellite trig is needed, and
    //     range_km is the same delta-norm scan_sky computes.
    // The candidates enter std::sort in the same order with the same
    // keys as scan_sky's entries, so the (unstable) sort applies the
    // same permutation and the connectable prefix is identical.
    if (options_.faults != nullptr && options_.faults->gs_down(gs_index, t)) {
        row.clear();  // GS outage: empty row, matching build_snapshot's skip
        return;
    }
    const double factor =
        options_.gsl_range_factor ? options_.gsl_range_factor(gs_index, t) : 1.0;
    const GsFrame& frame = gs_frames_[static_cast<std::size_t>(gs_index)];
    const int num_sats = num_sats_;
    const Vec3* const sat_positions = graph_.node_positions_data();
    std::uint32_t* bounds =
        not_before_ms_.data() +
        static_cast<std::size_t>(gs_index) * static_cast<std::size_t>(num_sats);
    auto& cand = sky_scratch_[static_cast<std::size_t>(gs_index)];
    cand.clear();
    for (int sat = 0; sat < num_sats; ++sat) {
        if (cull && now_ms < bounds[sat]) continue;
        const Vec3 delta = sat_positions[static_cast<std::size_t>(sat)] - frame.ecef;
        const double d = delta.norm();
        if (d > horizon_range_km_) {
            if (cull) {
                const double expiry =
                    static_cast<double>(now_ms) + (d - horizon_range_km_) * kCullMsPerKm;
                bounds[sat] = expiry >= 4294967295.0
                                  ? 0xffffffffu
                                  : static_cast<std::uint32_t>(expiry);
            }
            continue;
        }
        bounds[sat] = 0;  // near the cone: recheck every epoch
        const double zenith = frame.zenith_x * delta.x + frame.zenith_y * delta.y +
                              frame.zenith_z * delta.z;
        if (zenith < 0.0) continue;  // below the horizon plane
        cand.push_back({sat, d});
    }
    row.clear();
    std::size_t masked = 0;
    if (group_ != nullptr) {
        // Group law (see build_group_snapshot): total (range, id) order,
        // per-satellite cone ranges, weather factor applied to each
        // candidate's own shell. Candidates beyond the loosest weathered
        // cone end the scan — everything after them fails its own
        // (smaller) cone too.
        std::sort(cand.begin(), cand.end(),
                  [](const SkyCandidate& a, const SkyCandidate& b) {
                      return a.range_km < b.range_km ||
                             (a.range_km == b.range_km && a.sat < b.sat);
                  });
        const double* const max_r = sat_max_range_km_.data();
        for (const SkyCandidate& c : cand) {
            if (c.range_km > shell_max_range_km_ * factor &&
                c.range_km > shell_max_range_km_) {
                break;
            }
            if (c.range_km > max_r[static_cast<std::size_t>(c.sat)] ||
                c.range_km > max_r[static_cast<std::size_t>(c.sat)] * factor) {
                continue;  // outside this candidate's (weathered) cone
            }
            if (!fault_sat_down_.empty() &&
                fault_sat_down_[static_cast<std::size_t>(c.sat)] != 0) {
                ++masked;
                continue;  // dead satellite: same skip as build_snapshot
            }
            row.push_back({c.sat, c.range_km});
            if (options_.gs_nearest_satellite_only) break;
        }
    } else {
        const double max_range = shell_max_range_km_ * factor;
        std::sort(cand.begin(), cand.end(),
                  [](const SkyCandidate& a, const SkyCandidate& b) {
                      return a.range_km < b.range_km;
                  });
        for (const SkyCandidate& c : cand) {
            if (c.range_km > shell_max_range_km_) break;  // ascending: rest unconnectable
            if (c.range_km > max_range) break;  // weather-shrunk cone
            if (!fault_sat_down_.empty() &&
                fault_sat_down_[static_cast<std::size_t>(c.sat)] != 0) {
                ++masked;
                continue;  // dead satellite: same skip as build_snapshot
            }
            row.push_back({c.sat, c.range_km});
            if (options_.gs_nearest_satellite_only) break;
        }
    }
    if (masked != 0) {
        static obs::Counter* const masked_metric =
            &obs::metrics().counter("fault.links_masked");
        masked_metric->inc(masked);
    }
}

void SnapshotRefresher::patch_gs_row(int gs_index, const std::vector<Edge>& fresh) {
    const int gs_node = graph_.gs_node(gs_index);
    std::vector<Edge>& row = graph_.overlay_row(gs_node);
    // Satellite-side overlay rows are kept sorted by GS node id, which
    // reproduces build_snapshot's ascending-GS insertion order.
    for (const Edge& old : row) {
        std::vector<Edge>& sat_row = graph_.overlay_row(old.to);
        const auto it = std::find_if(sat_row.begin(), sat_row.end(),
                                     [&](const Edge& e) { return e.to == gs_node; });
        sat_row.erase(it);
    }
    for (const Edge& e : fresh) {
        std::vector<Edge>& sat_row = graph_.overlay_row(e.to);
        const auto at = std::lower_bound(
            sat_row.begin(), sat_row.end(), gs_node,
            [](const Edge& lhs, int node) { return lhs.to < node; });
        sat_row.insert(at, {gs_node, e.distance_km});
    }
    row.assign(fresh.begin(), fresh.end());
}

const Graph& SnapshotRefresher::refresh(TimeNs t) {
    HYPATIA_PROFILE_SCOPE("routing.snapshot_refresh");
    static obs::Counter* const refresh_metric =
        &obs::metrics().counter("route.snapshot_refresh");
    static obs::Counter* const patched_metric =
        &obs::metrics().counter("route.gsl_rows_patched");
    refresh_metric->inc();

    if (group_ != nullptr) {
        group_->warm_caches(t);
    } else {
        mobility_->warm_cache(t);
    }

    // 0. Flatten this epoch's satellite positions into the graph's
    // node-position buffer: every consumer (ISL weights, all GS scans,
    // the A* heuristic) reads the same point, so interpolate each
    // satellite once instead of once per (GS, sat).
    std::vector<Vec3>& positions = graph_.mutable_node_positions();
    if (group_ != nullptr) {
        for (int s = 0; s < group_->num_shells(); ++s) {
            const topo::SatelliteMobility& mob = group_->mobility(s);
            const int n = mob.num_satellites();
            const int off = group_->global_id(s, 0);
            for (int local = 0; local < n; ++local) {
                positions[static_cast<std::size_t>(off + local)] =
                    mob.position_ecef_warm(local, t);
            }
        }
    } else {
        for (int sat = 0; sat < num_sats_; ++sat) {
            positions[static_cast<std::size_t>(sat)] =
                mobility_->position_ecef_warm(sat, t);
        }
    }
    const Vec3* const sat_positions = positions.data();

    // Cull bounds are one-sided (forward in time); a backwards jump
    // invalidates them all. Times beyond the 32-bit ms horizon disable
    // culling outright rather than risk a saturated stale bound.
    const bool cull = t >= 0 && t < kCullHorizonNs;
    if (t < last_refresh_t_) {
        std::fill(not_before_ms_.begin(), not_before_ms_.end(), 0u);
    }
    last_refresh_t_ = t;
    const std::uint32_t now_ms =
        cull ? static_cast<std::uint32_t>(t / 1'000'000) : 0;

    // 0b. Fault state for this epoch: one satellite mask shared by the
    // ISL pass and every GS scan (same mask build_snapshot computes).
    const fault::FaultSchedule* const faults = options_.faults;
    if (faults != nullptr) {
        faults->fill_satellites_down(t, fault_sat_down_);
        static obs::Gauge* const down_gauge =
            &obs::metrics().gauge("fault.nodes_down");
        down_gauge->set(static_cast<double>(
            faults->down_count(fault::FaultKind::kSatellite, t) +
            faults->down_count(fault::FaultKind::kGroundStation, t)));
    }

    // 1. ISL weights in place (structure untouched). A failed link gets
    // kInfDistance — routing-equivalent to removal (inf never relaxes)
    // without disturbing the frozen slot indices.
    if (options_.include_isls) {
        std::size_t masked = 0;
        for (std::size_t i = 0; i < isls_->size(); ++i) {
            const auto& isl = (*isls_)[i];
            double d = sat_positions[static_cast<std::size_t>(isl.sat_a)].distance_to(
                sat_positions[static_cast<std::size_t>(isl.sat_b)]);
            if (faults != nullptr &&
                (fault_sat_down_[static_cast<std::size_t>(isl.sat_a)] != 0 ||
                 fault_sat_down_[static_cast<std::size_t>(isl.sat_b)] != 0 ||
                 faults->isl_down(isl.sat_a, isl.sat_b, t))) {
                d = kInfDistance;
                ++masked;
            }
            graph_.set_edge_distance(isl_slots_[i].first, d);
            graph_.set_edge_distance(isl_slots_[i].second, d);
        }
        if (masked != 0) {
            static obs::Counter* const masked_metric =
                &obs::metrics().counter("fault.links_masked");
            masked_metric->inc(masked);
        }
    }

    // 2. Parallel visibility rescan: per-GS rows, cull bounds and
    // scratch are disjoint slots and the flattened positions are
    // read-only, so the scan fans out on the pool; results land in GS
    // order regardless of scheduling.
    const std::size_t num_gs = ground_stations_->size();
    util::ThreadPool::global().parallel_for(
        num_gs, /*chunk=*/1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t gi = begin; gi < end; ++gi) {
                scan_gsl_row(static_cast<int>(gi), t, now_ms, cull, fresh_rows_[gi]);
            }
        });

    // 3. Delta patch: rows with an unchanged satellite set only get
    // their ranges overwritten; structurally changed rows are re-linked
    // on both sides.
    last_rows_patched_ = 0;
    std::size_t overlay_undirected = 0;
    for (std::size_t gi = 0; gi < num_gs; ++gi) {
        const std::vector<Edge>& fresh = fresh_rows_[gi];
        const int gs_node = graph_.gs_node(static_cast<int>(gi));
        std::vector<Edge>& row = graph_.overlay_row(gs_node);
        const bool same_sats =
            row.size() == fresh.size() &&
            std::equal(row.begin(), row.end(), fresh.begin(),
                       [](const Edge& a, const Edge& b) { return a.to == b.to; });
        if (same_sats) {
            for (std::size_t j = 0; j < row.size(); ++j) {
                row[j].distance_km = fresh[j].distance_km;
                std::vector<Edge>& sat_row = graph_.overlay_row(row[j].to);
                const auto it =
                    std::find_if(sat_row.begin(), sat_row.end(),
                                 [&](const Edge& e) { return e.to == gs_node; });
                it->distance_km = fresh[j].distance_km;
            }
        } else {
            patch_gs_row(static_cast<int>(gi), fresh);
            ++last_rows_patched_;
        }
        overlay_undirected += fresh.size();
    }
    graph_.set_overlay_undirected_edges(overlay_undirected);
    patched_metric->inc(last_rows_patched_);
    obs::recorder().record(obs::EventKind::kEpochAdvance, t,
                           static_cast<std::int32_t>(last_rows_patched_),
                           /*b=*/1);
    return graph_;
}

}  // namespace hypatia::route
