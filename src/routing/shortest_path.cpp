#include "src/routing/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "src/obs/observability.hpp"

namespace hypatia::route {

DestinationTree dijkstra_to(const Graph& graph, int destination) {
    HYPATIA_PROFILE_SCOPE("routing.dijkstra");
    static obs::Counter* const runs_metric =
        &obs::metrics().counter("route.dijkstra_runs");
    runs_metric->inc();
    const auto n = static_cast<std::size_t>(graph.num_nodes());
    DestinationTree tree;
    tree.destination = destination;
    tree.distance_km.assign(n, kInfDistance);
    tree.next_hop.assign(n, -1);

    using QueueItem = std::pair<double, int>;  // (distance, node)
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
    std::vector<char> done(n, 0);

    tree.distance_km[static_cast<std::size_t>(destination)] = 0.0;
    pq.push({0.0, destination});

    while (!pq.empty()) {
        const auto [dist, u] = pq.top();
        pq.pop();
        const auto ui = static_cast<std::size_t>(u);
        if (done[ui]) continue;
        done[ui] = 1;
        // Non-transit nodes may terminate at the destination but not relay:
        // once settled, their edges are not expanded (unless they are the
        // destination itself, whose edges are the last hops of all paths).
        if (u != destination && !graph.can_relay(u)) continue;
        for (const Edge& e : graph.neighbors(u)) {
            const auto vi = static_cast<std::size_t>(e.to);
            const double nd = dist + e.distance_km;
            if (nd < tree.distance_km[vi]) {
                tree.distance_km[vi] = nd;
                tree.next_hop[vi] = u;
                pq.push({nd, e.to});
            }
        }
    }
    return tree;
}

std::vector<int> extract_path(const DestinationTree& tree, int source) {
    std::vector<int> path;
    if (source != tree.destination &&
        tree.next_hop[static_cast<std::size_t>(source)] < 0) {
        return path;  // unreachable
    }
    int node = source;
    path.push_back(node);
    while (node != tree.destination) {
        node = tree.next_hop[static_cast<std::size_t>(node)];
        path.push_back(node);
        if (path.size() > static_cast<std::size_t>(tree.next_hop.size())) {
            // Defensive: a cycle here would indicate corrupted state.
            path.clear();
            return path;
        }
    }
    return path;
}

std::vector<std::vector<double>> floyd_warshall(const Graph& graph) {
    const auto n = static_cast<std::size_t>(graph.num_nodes());
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInfDistance));
    for (std::size_t i = 0; i < n; ++i) {
        dist[i][i] = 0.0;
        for (const Edge& e : graph.neighbors(static_cast<int>(i))) {
            dist[i][static_cast<std::size_t>(e.to)] =
                std::min(dist[i][static_cast<std::size_t>(e.to)], e.distance_km);
        }
    }
    for (std::size_t k = 0; k < n; ++k) {
        if (!graph.can_relay(static_cast<int>(k))) continue;
        for (std::size_t i = 0; i < n; ++i) {
            if (dist[i][k] == kInfDistance) continue;
            for (std::size_t j = 0; j < n; ++j) {
                const double through = dist[i][k] + dist[k][j];
                if (through < dist[i][j]) dist[i][j] = through;
            }
        }
    }
    return dist;
}

}  // namespace hypatia::route
