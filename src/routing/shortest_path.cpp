#include "src/routing/shortest_path.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "src/obs/observability.hpp"

namespace hypatia::route {

namespace {

// Bucket indices derive from key / width; the widths are powers of two,
// so multiplying by the exact reciprocal is bit-identical to dividing
// and roughly 20 cycles cheaper on the hot path.
constexpr double kInvCoarse = 1.0 / 512.0;
constexpr double kInvFine = 1.0 / 8.0;

// Keys whose coarse bin index would not round-trip through int64/double
// arithmetic (> ~2^63 buckets). No physical distance gets here; the
// guard only keeps degenerate inputs out of undefined casts.
constexpr double kMaxBinnableBin = 9.0e18;

inline int clamp_slot(std::int64_t s) {
    return static_cast<int>(std::clamp<std::int64_t>(s, 0, 63));
}

// The A* heuristic is the Euclidean chord to the nearest root, shrunk by
// this factor. The chord is admissible and consistent in exact
// arithmetic (edge weights are 3D Euclidean distances, so the triangle
// inequality applies); the 1e-9 relative shrink dominates the ~1e-16
// relative rounding of the chord computation itself, keeping the
// heuristic admissible — and f monotone along the calendar-queue cursor
// — in floating point too. It costs ~1e-9 relative guidance strength,
// far below anything measurable.
constexpr double kHeuristicSlack = 1.0 - 1e-9;

}  // namespace

RouteAlgo route_algo_from_env() {
    const char* v = std::getenv("HYPATIA_ROUTE_ALGO");
    if (v != nullptr && std::strcmp(v, "astar") == 0) return RouteAlgo::kAstar;
    return RouteAlgo::kDijkstra;
}

void DijkstraWorkspace::push(double key, std::int32_t node) {
    ++live_;
    if (!(key < horizon_km_)) {  // also routes inf (and any NaN) to the spill list
        overflow_.push_back({key, node});
        return;
    }
    const double scaled = key * kInvCoarse;
    if (!(scaled < kMaxBinnableBin)) {
        overflow_.push_back({key, node});
        return;
    }
    const auto bin = static_cast<std::int64_t>(scaled);
    if (bin == fine_base_) {
        const int s =
            clamp_slot(static_cast<std::int64_t>((key - fine_base_km_) * kInvFine));
        fine_[s].push_back({key, node});
        fine_mask_ |= (1ull << s);
    } else {
        // With non-negative weights every new key is >= the cursor, so
        // bin >= coarse_origin_; the clamp only defends slot arithmetic
        // against out-of-contract (negative-weight) graphs.
        const int s = clamp_slot(bin - coarse_origin_);
        coarse_[s].push_back({key, node});
        coarse_mask_ |= (1ull << s);
    }
}

DijkstraWorkspace::Item DijkstraWorkspace::pop_min() {
    for (;;) {
        if (fine_mask_ != 0) {
            const int s = std::countr_zero(fine_mask_);
            auto& bucket = fine_[s];
            // Exact (key, node) min of the bucket. Non-negative doubles
            // order the same as their bit patterns, so the scan compares
            // integers branchlessly instead of stalling on FP compares.
            std::size_t mi = 0;
            auto mk = std::bit_cast<std::uint64_t>(bucket[0].key);
            std::int32_t mn = bucket[0].node;
            for (std::size_t i = 1; i < bucket.size(); ++i) {
                const auto k = std::bit_cast<std::uint64_t>(bucket[i].key);
                const bool lt = (k < mk) | ((k == mk) & (bucket[i].node < mn));
                mi = lt ? i : mi;
                mk = lt ? k : mk;
                mn = lt ? bucket[i].node : mn;
            }
            const Item min = bucket[mi];
            bucket[mi] = bucket.back();
            bucket.pop_back();
            if (bucket.empty()) fine_mask_ &= ~(1ull << s);
            --live_;
            return min;
        }
        if (coarse_mask_ != 0) {
            // Expand the first occupied coarse bin into the fine tier;
            // each entry moves at most twice (coarse -> fine -> popped).
            const int s = std::countr_zero(coarse_mask_);
            auto& bucket = coarse_[s];
            fine_base_ = coarse_origin_ + s;
            fine_base_km_ = static_cast<double>(fine_base_) * kCoarseWidthKm;
            const double base = fine_base_km_;
            for (const Item& it : bucket) {
                const int t =
                    clamp_slot(static_cast<std::int64_t>((it.key - base) * kInvFine));
                fine_[t].push_back(it);
                fine_mask_ |= (1ull << t);
            }
            bucket.clear();
            coarse_mask_ &= ~(1ull << s);
            continue;
        }
        // Only spilled keys remain: advance the horizon to the smallest
        // one and re-bin. Unbinnable keys (inf or astronomically large)
        // are popped straight out of the spill list by exact linear scan
        // instead, which preserves the (key, node) order without casts.
        double m = overflow_[0].key;
        for (const Item& it : overflow_) m = std::min(m, it.key);
        if (!(m * kInvCoarse < kMaxBinnableBin)) {
            std::size_t mi = 0;
            for (std::size_t i = 1; i < overflow_.size(); ++i) {
                const Item& a = overflow_[i];
                const Item& b = overflow_[mi];
                if (a.key < b.key || (a.key == b.key && a.node < b.node)) mi = i;
            }
            const Item min = overflow_[mi];
            overflow_[mi] = overflow_.back();
            overflow_.pop_back();
            --live_;
            return min;
        }
        coarse_origin_ = static_cast<std::int64_t>(m * kInvCoarse);
        horizon_km_ = static_cast<double>(coarse_origin_ + 64) * kCoarseWidthKm;
        fine_base_ = -1;
        fine_base_km_ = -kCoarseWidthKm;
        // Rebase through a persistent scratch list so repeated rebases
        // (and repeated runs) recycle both buffers instead of allocating
        // a fresh spill vector per horizon advance.
        spill_.clear();
        spill_.swap(overflow_);
        live_ -= spill_.size();
        for (const Item& it : spill_) push(it.key, it.node);
    }
}

void DijkstraWorkspace::reset_queue() {
    for (auto& bucket : coarse_) bucket.clear();
    for (auto& bucket : fine_) bucket.clear();
    overflow_.clear();
    coarse_mask_ = 0;
    fine_mask_ = 0;
    coarse_origin_ = 0;
    fine_base_ = -1;
    horizon_km_ = 64.0 * kCoarseWidthKm;
    fine_base_km_ = -kCoarseWidthKm;
    live_ = 0;
}

template <typename NeighborsFn, typename RelayFn>
void DijkstraWorkspace::run_core(int num_nodes, int destination,
                                 NeighborsFn&& neighbors_of, RelayFn&& relay,
                                 DestinationTree& out) {
    HYPATIA_PROFILE_SCOPE("routing.dijkstra");
    static obs::Counter* const runs_metric =
        &obs::metrics().counter("route.dijkstra_runs");
    static obs::Counter* const pops_metric =
        &obs::metrics().counter("route.dijkstra_pops");
    static obs::Counter* const settled_metric =
        &obs::metrics().counter("route.dijkstra_settled");
    runs_metric->inc();
    const auto n = static_cast<std::size_t>(num_nodes);
    out.destination = destination;
    out.distance_km.assign(n, kInfDistance);
    out.next_hop.assign(n, -1);
    reset_queue();
    double* const dist = out.distance_km.data();
    int* const next_hop = out.next_hop.data();

    // Lazy insertion: every strict improvement pushes a fresh entry and
    // strands the old one, which pops later with a key above the node's
    // final distance and is skipped. Only transit-capable nodes are ever
    // queued — a non-relay node is never expanded regardless (it may end
    // a path but not carry one), and its distance/next_hop are written
    // during relaxation from its settled neighbors, so keeping it out of
    // the queue changes no output byte.
    dist[destination] = 0.0;
    push(0.0, destination);

    std::uint64_t pops = 0;
    std::uint64_t settled = 0;
    while (live_ != 0) {
        const Item top = pop_min();
        ++pops;
        const auto u = static_cast<std::size_t>(top.node);
        // A live (not yet superseded) entry always carries the node's
        // current tentative distance; anything else is a stranded
        // duplicate. Settled nodes cannot be improved afterwards (edge
        // weights are non-negative), so this also filters re-pops.
        if (top.key != dist[u]) continue;
        ++settled;
        const double du = top.key;
        neighbors_of(top.node, [&](const Edge& e) {
            const auto vi = static_cast<std::size_t>(e.to);
            const double nd = du + e.distance_km;
            const bool improved = nd < dist[vi];
            dist[vi] = improved ? nd : dist[vi];
            next_hop[vi] = improved ? top.node : next_hop[vi];
            if (improved && relay(e.to)) push(nd, e.to);
        });
    }
    last_pops_ = pops;
    last_settled_ = settled;
    last_early_exit_ = false;
    pops_metric->inc(pops);
    settled_metric->inc(settled);
}

void DijkstraWorkspace::run(const Graph& graph, int destination,
                            DestinationTree& out) {
    run_core(
        graph.num_nodes(), destination,
        [&graph](int node, auto&& fn) { graph.for_each_neighbor(node, fn); },
        [&graph](int node) { return graph.can_relay(node); }, out);
}

void DijkstraWorkspace::run(const GraphView& view, int destination,
                            DestinationTree& out) {
    run_core(
        view.num_nodes, destination,
        [&view](int node, auto&& fn) {
            const Edge* e = view.edges + view.offsets[node];
            const Edge* const end = view.edges + view.offsets[node + 1];
            for (; e != end; ++e) fn(*e);
        },
        [&view](int node) { return view.relay[node] != 0; }, out);
}

void DijkstraWorkspace::run_goal(const GraphView& view, const GoalSpec& spec,
                                 DestinationTree& out) {
    // A* needs node positions for the lower bound; without them the
    // search degrades to plain Dijkstra (identical output either way).
    const bool astar =
        spec.algo == RouteAlgo::kAstar && view.positions != nullptr;
    HYPATIA_PROFILE_SCOPE(astar ? "routing.astar" : "routing.dijkstra");
    static obs::Counter* const dijkstra_runs =
        &obs::metrics().counter("route.dijkstra_runs");
    static obs::Counter* const dijkstra_pops =
        &obs::metrics().counter("route.dijkstra_pops");
    static obs::Counter* const dijkstra_settled =
        &obs::metrics().counter("route.dijkstra_settled");
    static obs::Counter* const astar_runs =
        &obs::metrics().counter("route.astar_runs");
    static obs::Counter* const astar_pops =
        &obs::metrics().counter("route.astar_pops");
    static obs::Counter* const astar_settled =
        &obs::metrics().counter("route.astar_settled");
    static obs::Counter* const astar_early_exits =
        &obs::metrics().counter("route.astar_early_exits");
    (astar ? astar_runs : dijkstra_runs)->inc();

    const auto n = static_cast<std::size_t>(view.num_nodes);
    out.destination = spec.num_roots > 0 ? spec.roots[0] : 0;
    out.distance_km.assign(n, kInfDistance);
    out.next_hop.assign(n, -1);
    reset_queue();
    settled_.assign(n, 0);
    double* const dist = out.distance_km.data();
    int* const next_hop = out.next_hop.data();
    char* const settled = settled_.data();
    const std::int32_t* const offsets = view.offsets;
    const Edge* const edges = view.edges;
    const char* const relay = view.relay;
    const Vec3* const pos = view.positions;

    root_pos_.clear();
    if (astar) {
        for (int i = 0; i < spec.num_roots; ++i) {
            root_pos_.push_back(pos[spec.roots[i]]);
        }
        h_cache_.assign(n, -1.0);
    }
    const std::size_t num_root_pos = root_pos_.size();
    const Vec3* const root_pos = root_pos_.data();
    double* const h_cache = h_cache_.data();
    // h(v) is fixed for the whole run (node and root positions don't
    // move mid-search), so it is memoized: a node relaxed along several
    // edges pays the chord computation once.
    const auto heuristic = [&](std::int32_t v) -> double {
        const auto vi = static_cast<std::size_t>(v);
        if (h_cache[vi] >= 0.0) return h_cache[vi];
        double best = root_pos[0].distance_to(pos[v]);
        for (std::size_t i = 1; i < num_root_pos; ++i) {
            best = std::min(best, root_pos[i].distance_to(pos[v]));
        }
        return h_cache[vi] = best * kHeuristicSlack;
    };

    // Early-exit countdown over the (deduplicated) target set.
    int remaining = 0;
    if (astar && spec.num_targets > 0) {
        is_target_.assign(n, 0);
        for (int i = 0; i < spec.num_targets; ++i) {
            const auto t = static_cast<std::size_t>(spec.targets[i]);
            remaining += is_target_[t] == 0 ? 1 : 0;
            is_target_[t] = 1;
        }
    }

    // All roots start at distance 0; h(root) is exactly 0 (the chord to
    // the nearest root includes the root itself), so f = 0 for both
    // algorithms and the root pushes are shared.
    for (int i = 0; i < spec.num_roots; ++i) {
        dist[spec.roots[i]] = 0.0;
        push(0.0, spec.roots[i]);
    }

    std::uint64_t pops = 0;
    std::uint64_t settled_count = 0;
    bool early = false;
    while (live_ != 0) {
        const Item top = pop_min();
        ++pops;
        const auto u = static_cast<std::size_t>(top.node);
        // Settled-bitmap staleness filter: under A* a stranded
        // duplicate's f-key no longer equals dist[u] + h(u) cheaply, but
        // the first pop of a node always carries its minimal key, so a
        // second pop is exactly the stale case. Under Dijkstra this
        // skips the same entries as the key != dist[u] test: the entry
        // holding the node's final distance is its minimal one and pops
        // first.
        if (settled[u] != 0) continue;
        settled[u] = 1;
        ++settled_count;
        const double du = dist[u];
        const Edge* e = edges + offsets[u];
        const Edge* const end = edges + offsets[u + 1];
        for (; e != end; ++e) {
            const auto vi = static_cast<std::size_t>(e->to);
            const double nd = du + e->distance_km;
            const bool improved = nd < dist[vi];
            dist[vi] = improved ? nd : dist[vi];
            next_hop[vi] = improved ? top.node : next_hop[vi];
            if (improved && relay[vi] != 0) {
                push(astar ? nd + heuristic(e->to) : nd, e->to);
            }
        }
        if (remaining != 0 && is_target_[u] != 0) {
            if (--remaining == 0) {
                // Every target satellite is settled: with a consistent
                // heuristic a settled node's whole shortest-path chain
                // is settled, and the ground-station rows fed by these
                // satellites were finalized during their expansion, so
                // nothing the caller reads can change after this point.
                early = true;
                break;
            }
        }
    }
    last_pops_ = pops;
    last_settled_ = settled_count;
    last_early_exit_ = early;
    (astar ? astar_pops : dijkstra_pops)->inc(pops);
    (astar ? astar_settled : dijkstra_settled)->inc(settled_count);
    if (early) astar_early_exits->inc();
}

DijkstraWorkspace& thread_dijkstra_workspace() {
    thread_local DijkstraWorkspace workspace;
    return workspace;
}

DestinationTree dijkstra_to(const Graph& graph, int destination) {
    DestinationTree tree;
    thread_dijkstra_workspace().run(graph, destination, tree);
    return tree;
}

std::vector<int> extract_path(const DestinationTree& tree, int source) {
    std::vector<int> path;
    const auto n = static_cast<std::ptrdiff_t>(tree.next_hop.size());
    if (source < 0 || source >= n) return path;  // out of range: no path
    int node = source;
    path.push_back(node);
    while (tree.next_hop[static_cast<std::size_t>(node)] >= 0) {
        node = tree.next_hop[static_cast<std::size_t>(node)];
        // An out-of-range hop means the tree is inconsistent; report
        // the source as unreachable rather than walking off the buffer.
        if (node >= n) {
            path.clear();
            return path;
        }
        path.push_back(node);
        if (path.size() > static_cast<std::size_t>(tree.next_hop.size())) {
            // Defensive: a cycle here would indicate corrupted state.
            path.clear();
            return path;
        }
    }
    // The chain ended on a next_hop == -1 node. That is a valid path
    // exactly when the endpoint is a tree root: the destination, or —
    // for multi-root trees — any member settled at distance zero
    // (distances strictly decrease along next-hop chains, so roots are
    // the only reachable chain ends). Anything else is an unreachable
    // source or a corrupted tree.
    const bool at_root =
        node == tree.destination ||
        (static_cast<std::size_t>(node) < tree.distance_km.size() &&
         tree.distance_km[static_cast<std::size_t>(node)] == 0.0);
    if (!at_root) path.clear();
    return path;
}

std::vector<std::vector<double>> floyd_warshall(const Graph& graph) {
    const auto n = static_cast<std::size_t>(graph.num_nodes());
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, kInfDistance));
    for (std::size_t i = 0; i < n; ++i) {
        dist[i][i] = 0.0;
        graph.for_each_neighbor(static_cast<int>(i), [&](const Edge& e) {
            dist[i][static_cast<std::size_t>(e.to)] =
                std::min(dist[i][static_cast<std::size_t>(e.to)], e.distance_km);
        });
    }
    for (std::size_t k = 0; k < n; ++k) {
        if (!graph.can_relay(static_cast<int>(k))) continue;
        for (std::size_t i = 0; i < n; ++i) {
            if (dist[i][k] == kInfDistance) continue;
            for (std::size_t j = 0; j < n; ++j) {
                const double through = dist[i][k] + dist[k][j];
                if (through < dist[i][j]) dist[i][j] = through;
            }
        }
    }
    return dist;
}

}  // namespace hypatia::route
