// Forwarding state: per-node next hops toward each destination ground
// station, recomputed at a fixed time-step granularity (paper section 3.1,
// default 100 ms) and installed into the packet simulator by events.
#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/routing/shortest_path.hpp"

namespace hypatia::route {

/// The complete forwarding state of the network at one instant, for a set
/// of destinations (only destinations that traffic actually targets need
/// state — Hypatia does the same).
class ForwardingState {
  public:
    ForwardingState() = default;

    void set_tree(int destination, DestinationTree tree) {
        trees_[destination] = std::move(tree);
    }

    /// Get-or-create the tree slot for `destination`. The refresher-era
    /// epoch pipeline computes into existing slots so the per-node
    /// buffers are recycled across epochs instead of reallocated.
    DestinationTree& mutable_tree(int destination) { return trees_[destination]; }

    /// Drops every tree whose destination is not in `destinations`, so a
    /// recycled state never leaks trees from a previous epoch's
    /// destination set.
    void prune_to(const std::vector<int>& destinations);

    /// Next hop from `node` toward `destination`; -1 if unreachable or if
    /// no state exists for that destination.
    int next_hop(int node, int destination) const {
        const auto it = trees_.find(destination);
        if (it == trees_.end()) return -1;
        if (node == destination) return node;
        return it->second.next_hop[static_cast<std::size_t>(node)];
    }

    /// Shortest distance (km) from `node` to `destination`; infinity when
    /// unreachable or unknown.
    double distance_km(int node, int destination) const {
        const auto it = trees_.find(destination);
        if (it == trees_.end()) return kInfDistance;
        return it->second.distance_km[static_cast<std::size_t>(node)];
    }

    const DestinationTree* tree(int destination) const {
        const auto it = trees_.find(destination);
        return it == trees_.end() ? nullptr : &it->second;
    }

    std::size_t num_destinations() const { return trees_.size(); }

    /// Destination ids with installed trees, ascending. Dumps, traces and
    /// manifests must iterate the state through this (never the backing
    /// unordered_map) so their output is byte-stable across runs and
    /// insertion orders.
    std::vector<int> destinations() const;

    /// Serializes the complete state as CSV rows
    /// "destination,node,next_hop,distance_km", destinations ascending
    /// and nodes ascending — identical states dump byte-identically.
    /// Unreachable (e.g. partitioned-graph) rows use the documented
    /// sentinel next_hop == -1 with the literal distance "inf"; they are
    /// ordinary rows, never an error.
    void serialize_csv(std::ostream& out) const;
    std::string dump_csv() const;

  private:
    std::unordered_map<int, DestinationTree> trees_;
};

/// HYPATIA_DEST_CLUSTER_KM > 0 switches destination clustering on with
/// that great-circle radius; unset, non-numeric or <= 0 disables it
/// (the exact per-destination default).
double dest_cluster_km_from_env();

/// Greedy seed-based clustering of destination nodes by great-circle
/// proximity: nodes are taken in input order, each joins the first
/// cluster whose seed (its first member) lies within `cluster_km`
/// great-circle kilometres, else it opens a new cluster. Deterministic;
/// requires graph node positions (nodes are radially projected onto the
/// Earth sphere, so satellite nodes cluster by their ground tracks).
std::vector<std::vector<int>> cluster_destinations(const Graph& graph,
                                                   const std::vector<int>& destinations,
                                                   double cluster_km);

/// Computes forwarding state on `graph` for every node in `destinations`.
ForwardingState compute_forwarding(const Graph& graph,
                                   const std::vector<int>& destinations);

/// Same computation into an existing state: tree buffers are recycled
/// (zero allocations per epoch once warm), stale destinations pruned.
/// The per-destination fan-out runs on the pool using lane-local
/// workspaces; results are byte-identical to compute_forwarding at any
/// thread count.
///
/// HYPATIA_ROUTE_ALGO=astar runs each tree as A* to exhaustion: same
/// exact distances (and, short of exact floating-point cost ties, the
/// same next hops) with fewer queue pops. With clustering active
/// (HYPATIA_DEST_CLUSTER_KM, graphs built with node positions) one
/// multi-source tree is computed per cluster and installed for every
/// member destination: each node's distance/next hop is then exact
/// toward its *nearest cluster member* — per-destination error is
/// bounded by the cluster diameter (in RTT terms, diameter / c) — and
/// rows for non-seed members terminate at another member. Clustered
/// states approximate; leave clustering off for byte-exact semantics.
void compute_forwarding_into(const Graph& graph, const std::vector<int>& destinations,
                             ForwardingState& state);

}  // namespace hypatia::route
