#include "src/routing/graph.hpp"

#include <stdexcept>

#include "src/obs/observability.hpp"

namespace hypatia::route {

Graph::Graph(int num_satellites, int num_ground_stations)
    : num_satellites_(num_satellites),
      adj_(static_cast<std::size_t>(num_satellites + num_ground_stations)),
      relay_(static_cast<std::size_t>(num_satellites + num_ground_stations), 0) {
    for (int i = 0; i < num_satellites; ++i) relay_[static_cast<std::size_t>(i)] = 1;
}

void Graph::add_undirected_edge(int a, int b, double distance_km) {
    if (a == b) throw std::invalid_argument("graph: self-loop");
    adj_.at(static_cast<std::size_t>(a)).push_back({b, distance_km});
    adj_.at(static_cast<std::size_t>(b)).push_back({a, distance_km});
}

std::size_t Graph::num_edges() const {
    std::size_t total = 0;
    for (const auto& n : adj_) total += n.size();
    return total / 2;
}

Graph build_snapshot(const topo::SatelliteMobility& mobility,
                     const std::vector<topo::Isl>& isls,
                     const std::vector<orbit::GroundStation>& ground_stations, TimeNs t,
                     const SnapshotOptions& options) {
    HYPATIA_PROFILE_SCOPE("routing.snapshot");
    static obs::Counter* const snapshots_metric =
        &obs::metrics().counter("route.snapshots");
    snapshots_metric->inc();
    const int num_sats = mobility.num_satellites();
    Graph g(num_sats, static_cast<int>(ground_stations.size()));

    // Batch the SGP4 propagations for this instant across the pool; the
    // serial ISL and visibility loops below then run on warm cache hits.
    mobility.warm_cache(t);

    if (options.include_isls) {
        for (const auto& isl : isls) {
            const double d = mobility.position_ecef(isl.sat_a, t)
                                 .distance_to(mobility.position_ecef(isl.sat_b, t));
            g.add_undirected_edge(isl.sat_a, isl.sat_b, d);
        }
    }

    const double base_range = mobility.constellation().params().max_gsl_range_km();
    for (std::size_t gi = 0; gi < ground_stations.size(); ++gi) {
        const int gs_node = g.gs_node(static_cast<int>(gi));
        double max_range = base_range;
        if (options.gsl_range_factor) {
            max_range *= options.gsl_range_factor(static_cast<int>(gi), t);
        }
        for (const auto& entry :
             topo::visible_satellites(ground_stations[gi], mobility, t)) {
            if (entry.range_km > max_range) continue;  // weather-shrunk cone
            g.add_undirected_edge(gs_node, entry.sat_id, entry.range_km);
            if (options.gs_nearest_satellite_only) break;  // entries sorted by range
        }
    }

    for (int relay_gs : options.relay_gs_indices) {
        g.set_relay(g.gs_node(relay_gs), true);
    }
    return g;
}

}  // namespace hypatia::route
