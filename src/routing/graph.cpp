#include "src/routing/graph.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/obs/observability.hpp"
#include "src/obs/recorder.hpp"

namespace hypatia::route {

Graph::Graph(int num_satellites, int num_ground_stations)
    : num_satellites_(num_satellites),
      num_nodes_(num_satellites + num_ground_stations),
      relay_(static_cast<std::size_t>(num_satellites + num_ground_stations), 0) {
    for (int i = 0; i < num_satellites; ++i) relay_[static_cast<std::size_t>(i)] = 1;
}

void Graph::add_undirected_edge(int a, int b, double distance_km) {
    if (a == b) throw std::invalid_argument("graph: self-loop");
    if (a < 0 || a >= num_nodes_ || b < 0 || b >= num_nodes_) {
        throw std::out_of_range("graph: node id out of range");
    }
    if (overlay_enabled_) {
        throw std::logic_error(
            "graph: base structure is frozen once the overlay is enabled");
    }
    pending_from_.push_back(a);
    pending_edges_.push_back({b, distance_km});
    pending_from_.push_back(b);
    pending_edges_.push_back({a, distance_km});
    ++base_undirected_;
    dirty_ = true;
}

void Graph::reserve_edges(std::size_t undirected) {
    pending_from_.reserve(2 * undirected);
    pending_edges_.reserve(2 * undirected);
}

void Graph::finalize() const {
    if (!dirty_) return;
    const auto n = static_cast<std::size_t>(num_nodes_);
    offsets_.assign(n + 1, 0);
    for (const std::int32_t from : pending_from_) {
        ++offsets_[static_cast<std::size_t>(from) + 1];
    }
    std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());
    edges_.resize(pending_edges_.size());
    // Stable counting-sort scatter: per-node relative order equals
    // insertion order, exactly what the adjacency-list layout produced.
    std::vector<std::int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t i = 0; i < pending_edges_.size(); ++i) {
        edges_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(pending_from_[i])]++)] =
            pending_edges_[i];
    }
    dirty_ = false;
}

std::size_t Graph::directed_edge_index(int from, int to) const {
    finalize();
    const auto begin = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(from)]);
    const auto end =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(from) + 1]);
    for (std::size_t i = begin; i < end; ++i) {
        if (edges_[i].to == to) return i;
    }
    throw std::out_of_range("graph: no such directed edge");
}

void Graph::enable_overlay() {
    if (overlay_enabled_) return;
    finalize();
    overlay_.resize(static_cast<std::size_t>(num_nodes_));
    overlay_enabled_ = true;
}

void Graph::export_merged_csr(std::vector<std::int32_t>& offsets,
                              std::vector<Edge>& edges) const {
    finalize();
    const auto n = static_cast<std::size_t>(num_nodes_);
    offsets.resize(n + 1);
    std::size_t total = edges_.size();
    if (overlay_enabled_) {
        for (const auto& row : overlay_) total += row.size();
    }
    edges.resize(total);
    std::size_t at = 0;
    for (std::size_t node = 0; node < n; ++node) {
        offsets[node] = static_cast<std::int32_t>(at);
        const auto begin = static_cast<std::size_t>(offsets_[node]);
        const auto end = static_cast<std::size_t>(offsets_[node + 1]);
        std::copy(edges_.begin() + static_cast<std::ptrdiff_t>(begin),
                  edges_.begin() + static_cast<std::ptrdiff_t>(end),
                  edges.begin() + static_cast<std::ptrdiff_t>(at));
        at += end - begin;
        if (overlay_enabled_) {
            const auto& row = overlay_[node];
            std::copy(row.begin(), row.end(),
                      edges.begin() + static_cast<std::ptrdiff_t>(at));
            at += row.size();
        }
    }
    offsets[n] = static_cast<std::int32_t>(at);
}

Graph build_snapshot(const topo::SatelliteMobility& mobility,
                     const std::vector<topo::Isl>& isls,
                     const std::vector<orbit::GroundStation>& ground_stations, TimeNs t,
                     const SnapshotOptions& options) {
    HYPATIA_PROFILE_SCOPE("routing.snapshot");
    static obs::Counter* const snapshots_metric =
        &obs::metrics().counter("route.snapshots");
    static obs::Counter* const masked_metric =
        &obs::metrics().counter("fault.links_masked");
    static obs::Gauge* const down_gauge = &obs::metrics().gauge("fault.nodes_down");
    snapshots_metric->inc();
    obs::recorder().record(obs::EventKind::kEpochAdvance, t, /*a=*/-1, /*b=*/0);
    const int num_sats = mobility.num_satellites();
    Graph g(num_sats, static_cast<int>(ground_stations.size()));
    g.reserve_edges((options.include_isls ? isls.size() : 0) +
                    8 * ground_stations.size());

    const fault::FaultSchedule* faults =
        (options.faults != nullptr && !options.faults->empty()) ? options.faults
                                                                : nullptr;
    std::vector<char> sat_down;
    if (faults != nullptr) {
        faults->fill_satellites_down(t, sat_down);
        down_gauge->set(
            static_cast<double>(faults->down_count(fault::FaultKind::kSatellite, t) +
                                faults->down_count(fault::FaultKind::kGroundStation, t)));
    }
    std::size_t masked = 0;

    // Batch the SGP4 propagations for this instant across the pool; the
    // serial ISL and visibility loops below then run on warm cache hits.
    mobility.warm_cache(t);

    if (options.include_isls) {
        for (const auto& isl : isls) {
            double d = mobility.position_ecef(isl.sat_a, t)
                           .distance_to(mobility.position_ecef(isl.sat_b, t));
            // A failed link keeps its slot with infinite weight (see
            // SnapshotOptions::faults): routing-invisible, yet the CSR
            // structure stays congruent with the refresher's frozen base.
            if (faults != nullptr &&
                (sat_down[static_cast<std::size_t>(isl.sat_a)] != 0 ||
                 sat_down[static_cast<std::size_t>(isl.sat_b)] != 0 ||
                 faults->isl_down(isl.sat_a, isl.sat_b, t))) {
                d = kInfDistance;
                ++masked;
            }
            g.add_undirected_edge(isl.sat_a, isl.sat_b, d);
        }
    }

    const double base_range = mobility.constellation().params().max_gsl_range_km();
    for (std::size_t gi = 0; gi < ground_stations.size(); ++gi) {
        if (faults != nullptr && faults->gs_down(static_cast<int>(gi), t)) {
            continue;  // GS outage: its GSL row is empty this epoch
        }
        const int gs_node = g.gs_node(static_cast<int>(gi));
        double max_range = base_range;
        if (options.gsl_range_factor) {
            max_range *= options.gsl_range_factor(static_cast<int>(gi), t);
        }
        for (const auto& entry :
             topo::visible_satellites(ground_stations[gi], mobility, t)) {
            // Entries are sorted by ascending range: the first one past
            // the (possibly weather-shrunk) cone ends the row. In
            // nearest-satellite-only mode this pins the semantics of a
            // weather-shrunk nearest satellite: the GS is disconnected,
            // it does not fall through to a farther satellite.
            if (entry.range_km > max_range) break;
            if (faults != nullptr && sat_down[static_cast<std::size_t>(entry.sat_id)] != 0) {
                ++masked;
                continue;  // dead satellite: not a connectable target
            }
            g.add_undirected_edge(gs_node, entry.sat_id, entry.range_km);
            if (options.gs_nearest_satellite_only) break;
        }
    }
    if (masked != 0) masked_metric->inc(masked);

    for (int relay_gs : options.relay_gs_indices) {
        g.set_relay(g.gs_node(relay_gs), true);
    }

    // Node positions for the A* lower bound: exactly the points the
    // edge weights above were measured between (warm cache, so the
    // satellite reads are bit-identical to the ISL/GSL computations).
    std::vector<Vec3>& pos = g.mutable_node_positions();
    for (int s = 0; s < num_sats; ++s) {
        pos[static_cast<std::size_t>(s)] = mobility.position_ecef(s, t);
    }
    for (std::size_t gi = 0; gi < ground_stations.size(); ++gi) {
        pos[static_cast<std::size_t>(g.gs_node(static_cast<int>(gi)))] =
            ground_stations[gi].ecef();
    }

    g.finalize();
    return g;
}

}  // namespace hypatia::route
