// Step-wise ground-station-pair path/RTT sweep — the single sweep
// implementation behind every per-pair time series in the repo:
// analyze_pairs() folds its statistics over it, the Fig 13 CSV/JSON
// exporters read it through viz::sweep_pair_series, and the emulation
// schedule exporter (src/emu/) derives netem schedules from it. One
// implementation means the figure CSVs and the emu schedules cannot
// drift apart.
//
// A PairSweeper owns the whole per-epoch snapshot machinery: the
// in-place SnapshotRefresher (or per-step rebuild under
// HYPATIA_SNAPSHOT_MODE=rebuild — outputs are byte-identical), the
// optional fault schedule (explicit pointer or the HYPATIA_FAULTS
// fallback), and the per-destination Dijkstra fan-out on the thread
// pool. step(t) brings the snapshot to orbit time t and returns one
// Sample per pair; callers advance t however they like — a tight batch
// loop (analyze_pairs) or a wall-clock-paced epoch driver
// (emu::RealtimePacer).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/orbit/ground_station.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/graph.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/units.hpp"

namespace hypatia::route {

/// A source-destination ground-station pair (indices into the GS list).
struct GsPair {
    int src_gs = 0;
    int dst_gs = 0;
};

struct SweepOptions {
    bool include_isls = true;
    std::vector<int> relay_gs_indices;  // bent-pipe relays, if any
    bool gs_nearest_satellite_only = false;
    std::function<double(int gs_index, TimeNs t)> gsl_range_factor;
    /// Optional fault schedule (must outlive the sweeper). When nullptr,
    /// HYPATIA_FAULTS is consulted instead; pass a pointer to an empty
    /// schedule to force fault-free sweeping regardless of the
    /// environment.
    const fault::FaultSchedule* faults = nullptr;
    /// Window synthesized for the *first* step's fault-transition
    /// streaming: step(t0) records transitions in (t0 - step_hint, t0].
    TimeNs step_hint = 100 * kNsPerMs;
    /// Destination clustering radius (great-circle km): destinations
    /// within it share one multi-source tree (distances become exact
    /// to the nearest cluster member — see compute_forwarding_into's
    /// contract). Negative = resolve from HYPATIA_DEST_CLUSTER_KM;
    /// 0 = off.
    double dest_cluster_km = -1.0;
};

class PairSweeper {
  public:
    /// One pair's state at one step. `path` is the full node sequence
    /// source GS node, satellites..., destination GS node; empty — with
    /// rtt_s == kInfDistance — when the pair is unreachable (the
    /// documented partitioned-graph sentinel).
    struct Sample {
        double rtt_s = kInfDistance;
        std::vector<int> path;

        bool reachable() const { return rtt_s != kInfDistance; }
    };

    /// The referenced mobility, ISL list and GS list must outlive the
    /// sweeper. `options` is captured by value, fault pointer included.
    PairSweeper(const topo::SatelliteMobility& mobility,
                const std::vector<topo::Isl>& isls,
                const std::vector<orbit::GroundStation>& ground_stations,
                std::vector<GsPair> pairs, SweepOptions options = {});

    /// Multi-shell sweep over a ShellGroup (must outlive the sweeper;
    /// ISLs are the group's intra-shell +Grid set). Same stepping
    /// contract; snapshots come from build_group_snapshot / the group
    /// refresher.
    PairSweeper(const topo::ShellGroup& group,
                const std::vector<orbit::GroundStation>& ground_stations,
                std::vector<GsPair> pairs, SweepOptions options = {});

    /// Brings the snapshot to orbit time `t`, streams the fault
    /// transitions the step crossed into the flight recorder, runs the
    /// per-destination fan-out and returns one Sample per pair
    /// (parallel to pairs(); buffers are recycled across steps). Not
    /// re-entrant.
    ///
    /// The fan-out honours HYPATIA_ROUTE_ALGO (read per step): under
    /// astar each destination tree stops expanding once every satellite
    /// attached to a source ground station that queries it is settled —
    /// the sampled RTTs and paths are exactly Dijkstra's, only the
    /// unexplored remainder of the tree is skipped. Destination
    /// clustering (SweepOptions::dest_cluster_km) makes samples
    /// nearest-member approximations as documented there.
    const std::vector<Sample>& step(TimeNs t);

    /// Queue pops consumed by the last step()'s fan-out (summed over
    /// destination trees) — the goal-directed-search benchmark metric.
    std::uint64_t last_step_pops() const { return last_step_pops_; }
    std::uint64_t last_step_settled() const { return last_step_settled_; }

    /// Destination trees computed per step — one per cluster; equals the
    /// number of distinct destinations when clustering is off.
    std::size_t num_trees() const { return trees_.size(); }

    /// Fault-transition streaming cursor: the orbit time of the last
    /// completed step (nullopt before the first). Checkpoint/restore
    /// saves it so a resumed run's first step records transitions over
    /// exactly (prev, t] — the same window the uninterrupted run saw —
    /// instead of re-synthesizing one from step_hint.
    std::optional<TimeNs> sweep_cursor() const {
        return have_prev_t_ ? std::optional<TimeNs>(prev_t_) : std::nullopt;
    }
    void set_sweep_cursor(TimeNs prev_t) {
        prev_t_ = prev_t;
        have_prev_t_ = true;
    }

    const std::vector<GsPair>& pairs() const { return pairs_; }
    /// The resolved fault schedule (explicit or HYPATIA_FAULTS);
    /// nullptr when faults are disabled.
    const fault::FaultSchedule* faults() const { return snap_opts_.faults; }
    int num_satellites() const { return num_satellites_; }
    int gs_node(int gs_index) const { return num_satellites_ + gs_index; }

  private:
    void init();

    const topo::SatelliteMobility* mobility_;   // null in group mode
    const topo::ShellGroup* group_ = nullptr;   // null in single-shell mode
    const std::vector<topo::Isl>* isls_;
    const std::vector<orbit::GroundStation>* ground_stations_;
    std::vector<GsPair> pairs_;
    SweepOptions options_;
    int num_satellites_ = 0;

    SnapshotOptions snap_opts_;
    std::optional<fault::FaultSchedule> env_faults_;
    std::optional<SnapshotRefresher> refresher_;

    /// Destinations needing trees (deduplicated, ascending), greedily
    /// grouped into clusters (singletons when clustering is off, so the
    /// cluster fan-out degenerates to the per-destination one). Tree i
    /// serves every destination of clusters_[i]; tree_slot_ maps a
    /// dst_gs to its cluster's tree.
    std::vector<int> dest_list_;
    std::vector<std::vector<int>> clusters_;       // dst GS indices
    std::vector<std::vector<int>> cluster_roots_;  // same, as graph nodes
    /// Source GS nodes of the pairs each cluster serves (unique,
    /// ascending): their attachment satellites are the A* early-exit
    /// target set, rebuilt per step from the current GSL rows.
    std::vector<std::vector<int>> cluster_src_nodes_;
    std::vector<std::vector<int>> target_scratch_;
    std::unordered_map<int, std::size_t> tree_slot_;
    std::vector<DestinationTree> trees_;
    std::vector<std::uint64_t> tree_pops_;
    std::vector<std::uint64_t> tree_settled_;
    std::uint64_t last_step_pops_ = 0;
    std::uint64_t last_step_settled_ = 0;

    /// Merged-CSR view scratch, reused across steps.
    std::vector<std::int32_t> view_offsets_;
    std::vector<Edge> view_edges_;

    std::vector<Sample> samples_;
    bool have_prev_t_ = false;
    TimeNs prev_t_ = 0;
};

}  // namespace hypatia::route
