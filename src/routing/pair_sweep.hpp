// Step-wise ground-station-pair path/RTT sweep — the single sweep
// implementation behind every per-pair time series in the repo:
// analyze_pairs() folds its statistics over it, the Fig 13 CSV/JSON
// exporters read it through viz::sweep_pair_series, and the emulation
// schedule exporter (src/emu/) derives netem schedules from it. One
// implementation means the figure CSVs and the emu schedules cannot
// drift apart.
//
// A PairSweeper owns the whole per-epoch snapshot machinery: the
// in-place SnapshotRefresher (or per-step rebuild under
// HYPATIA_SNAPSHOT_MODE=rebuild — outputs are byte-identical), the
// optional fault schedule (explicit pointer or the HYPATIA_FAULTS
// fallback), and the per-destination Dijkstra fan-out on the thread
// pool. step(t) brings the snapshot to orbit time t and returns one
// Sample per pair; callers advance t however they like — a tight batch
// loop (analyze_pairs) or a wall-clock-paced epoch driver
// (emu::RealtimePacer).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/orbit/ground_station.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/graph.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/topology/isl.hpp"
#include "src/topology/mobility.hpp"
#include "src/util/units.hpp"

namespace hypatia::route {

/// A source-destination ground-station pair (indices into the GS list).
struct GsPair {
    int src_gs = 0;
    int dst_gs = 0;
};

struct SweepOptions {
    bool include_isls = true;
    std::vector<int> relay_gs_indices;  // bent-pipe relays, if any
    bool gs_nearest_satellite_only = false;
    std::function<double(int gs_index, TimeNs t)> gsl_range_factor;
    /// Optional fault schedule (must outlive the sweeper). When nullptr,
    /// HYPATIA_FAULTS is consulted instead; pass a pointer to an empty
    /// schedule to force fault-free sweeping regardless of the
    /// environment.
    const fault::FaultSchedule* faults = nullptr;
    /// Window synthesized for the *first* step's fault-transition
    /// streaming: step(t0) records transitions in (t0 - step_hint, t0].
    TimeNs step_hint = 100 * kNsPerMs;
};

class PairSweeper {
  public:
    /// One pair's state at one step. `path` is the full node sequence
    /// source GS node, satellites..., destination GS node; empty — with
    /// rtt_s == kInfDistance — when the pair is unreachable (the
    /// documented partitioned-graph sentinel).
    struct Sample {
        double rtt_s = kInfDistance;
        std::vector<int> path;

        bool reachable() const { return rtt_s != kInfDistance; }
    };

    /// The referenced mobility, ISL list and GS list must outlive the
    /// sweeper. `options` is captured by value, fault pointer included.
    PairSweeper(const topo::SatelliteMobility& mobility,
                const std::vector<topo::Isl>& isls,
                const std::vector<orbit::GroundStation>& ground_stations,
                std::vector<GsPair> pairs, SweepOptions options = {});

    /// Brings the snapshot to orbit time `t`, streams the fault
    /// transitions the step crossed into the flight recorder, runs the
    /// per-destination Dijkstra fan-out and returns one Sample per pair
    /// (parallel to pairs(); buffers are recycled across steps). Not
    /// re-entrant.
    const std::vector<Sample>& step(TimeNs t);

    const std::vector<GsPair>& pairs() const { return pairs_; }
    /// The resolved fault schedule (explicit or HYPATIA_FAULTS);
    /// nullptr when faults are disabled.
    const fault::FaultSchedule* faults() const { return snap_opts_.faults; }
    int num_satellites() const { return num_satellites_; }
    int gs_node(int gs_index) const { return num_satellites_ + gs_index; }

  private:
    const topo::SatelliteMobility* mobility_;
    const std::vector<topo::Isl>* isls_;
    const std::vector<orbit::GroundStation>* ground_stations_;
    std::vector<GsPair> pairs_;
    SweepOptions options_;
    int num_satellites_ = 0;

    SnapshotOptions snap_opts_;
    std::optional<fault::FaultSchedule> env_faults_;
    std::optional<SnapshotRefresher> refresher_;

    /// Destinations needing trees (deduplicated, ascending — the fixed
    /// order the parallel fan-out folds back in) and their tree slots.
    std::vector<int> dest_list_;
    std::unordered_map<int, std::size_t> tree_slot_;
    std::vector<DestinationTree> trees_;

    std::vector<Sample> samples_;
    bool have_prev_t_ = false;
    TimeNs prev_t_ = 0;
};

}  // namespace hypatia::route
