#include "src/flowsim/solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/obs/observability.hpp"

namespace hypatia::flowsim {

void FairShareProblem::add_flow(const std::vector<std::uint32_t>& links, double cap) {
    flow_links.insert(flow_links.end(), links.begin(), links.end());
    flow_offset.push_back(static_cast<std::uint32_t>(flow_links.size()));
    if (cap != kNoRateCap || !rate_cap_bps.empty()) {
        // Lazily materialize: backfill earlier uncapped flows on first cap.
        rate_cap_bps.resize(num_flows() - 1, kNoRateCap);
        rate_cap_bps.push_back(cap);
    }
}

FairShareResult solve_max_min(const FairShareProblem& p) {
    HYPATIA_PROFILE_SCOPE("flowsim.solve");
    static obs::Counter* const runs_metric =
        &obs::metrics().counter("flowsim.solver_runs");
    static obs::Counter* const rounds_metric =
        &obs::metrics().counter("flowsim.solver_rounds");
    runs_metric->inc();

    const std::size_t num_flows = p.num_flows();
    const std::size_t num_links = p.capacity_bps.size();
    FairShareResult result;
    result.rate_bps.assign(num_flows, 0.0);
    if (num_flows == 0) return result;

    const auto flow_cap = [&p](std::size_t f) {
        return p.rate_cap_bps.empty() ? kNoRateCap : p.rate_cap_bps[f];
    };

    // CSR reverse index: flows crossing each link.
    std::vector<std::uint32_t> link_degree(num_links, 0);
    for (const std::uint32_t l : p.flow_links) ++link_degree[l];
    std::vector<std::uint32_t> link_offset(num_links + 1, 0);
    for (std::size_t l = 0; l < num_links; ++l) {
        link_offset[l + 1] = link_offset[l] + link_degree[l];
    }
    std::vector<std::uint32_t> link_flows(p.flow_links.size());
    {
        std::vector<std::uint32_t> cursor(link_offset.begin(), link_offset.end() - 1);
        for (std::size_t f = 0; f < num_flows; ++f) {
            for (std::uint32_t i = p.flow_offset[f]; i < p.flow_offset[f + 1]; ++i) {
                link_flows[cursor[p.flow_links[i]]++] = static_cast<std::uint32_t>(f);
            }
        }
    }

    std::vector<std::uint32_t> unfrozen_on(link_degree);  // flows still rising
    std::vector<double> frozen_load(num_links, 0.0);      // bps held by frozen flows
    std::vector<char> frozen(num_flows, 0);
    std::size_t num_unfrozen = num_flows;

    // Freezes `f` at `rate`, releasing its claim on every crossed link.
    const auto freeze = [&](std::size_t f, double rate) {
        frozen[f] = 1;
        result.rate_bps[f] = rate;
        --num_unfrozen;
        for (std::uint32_t i = p.flow_offset[f]; i < p.flow_offset[f + 1]; ++i) {
            const std::uint32_t l = p.flow_links[i];
            frozen_load[l] += rate;
            --unfrozen_on[l];
        }
    };

    // Flows with no resource constraint are limited by their cap alone.
    for (std::size_t f = 0; f < num_flows; ++f) {
        if (p.flow_offset[f] == p.flow_offset[f + 1]) freeze(f, flow_cap(f));
    }

    // Capped flows in ascending cap order: the next cap to bind is always
    // at `next_capped` (already-frozen entries are skipped on the way).
    std::vector<std::uint32_t> by_cap;
    if (!p.rate_cap_bps.empty()) {
        for (std::size_t f = 0; f < num_flows; ++f) {
            if (!frozen[f] && flow_cap(f) != kNoRateCap) {
                by_cap.push_back(static_cast<std::uint32_t>(f));
            }
        }
        std::sort(by_cap.begin(), by_cap.end(), [&](std::uint32_t a, std::uint32_t b) {
            return flow_cap(a) < flow_cap(b);
        });
    }
    std::size_t next_capped = 0;

    // Every round freezes at least one flow, so `num_flows` rounds is a
    // hard ceiling; hitting it means a numeric anomaly (NaN capacity).
    const int max_rounds = static_cast<int>(num_flows) + 1;
    while (num_unfrozen > 0) {
        if (++result.rounds > max_rounds) {
            result.converged = false;
            break;
        }
        // The level at which the next link saturates...
        double level = kNoRateCap;
        for (std::size_t l = 0; l < num_links; ++l) {
            if (unfrozen_on[l] == 0) continue;
            const double headroom = std::max(0.0, p.capacity_bps[l] - frozen_load[l]);
            level = std::min(level, headroom / unfrozen_on[l]);
        }
        // ...unless a rate cap binds first.
        while (next_capped < by_cap.size() && frozen[by_cap[next_capped]]) {
            ++next_capped;
        }
        const double next_cap = next_capped < by_cap.size()
                                    ? flow_cap(by_cap[next_capped])
                                    : kNoRateCap;
        if (next_cap != kNoRateCap && next_cap <= level) {
            // Freeze every remaining flow whose cap binds at this level.
            while (next_capped < by_cap.size() &&
                   (frozen[by_cap[next_capped]] ||
                    flow_cap(by_cap[next_capped]) <= next_cap)) {
                const std::uint32_t f = by_cap[next_capped++];
                if (!frozen[f]) freeze(f, flow_cap(f));
            }
            continue;
        }
        if (level == kNoRateCap) {
            // Only uncapped flows over unconstrained links remain.
            for (std::size_t f = 0; f < num_flows; ++f) {
                if (!frozen[f]) freeze(f, kNoRateCap);
            }
            break;
        }
        // Freeze everything crossing a link that saturates at `level`
        // (a tiny relative epsilon merges numerically-tied bottlenecks).
        const double threshold = level + 1e-12 * std::max(1.0, level);
        bool froze_any = false;
        for (std::size_t l = 0; l < num_links; ++l) {
            if (unfrozen_on[l] == 0) continue;
            const double headroom = std::max(0.0, p.capacity_bps[l] - frozen_load[l]);
            if (headroom / unfrozen_on[l] > threshold) continue;
            for (std::uint32_t i = link_offset[l]; i < link_offset[l + 1]; ++i) {
                const std::uint32_t f = link_flows[i];
                if (!frozen[f]) {
                    freeze(f, level);
                    froze_any = true;
                }
            }
        }
        if (!froze_any) {  // NaN capacities can make every share incomparable
            result.converged = false;
            break;
        }
    }
    rounds_metric->inc(static_cast<std::uint64_t>(result.rounds));
    return result;
}

bool allocation_feasible(const FairShareProblem& p, const std::vector<double>& rates,
                         double tolerance) {
    std::vector<double> load(p.capacity_bps.size(), 0.0);
    for (std::size_t f = 0; f < p.num_flows(); ++f) {
        for (std::uint32_t i = p.flow_offset[f]; i < p.flow_offset[f + 1]; ++i) {
            load[p.flow_links[i]] += rates[f];
        }
    }
    for (std::size_t l = 0; l < load.size(); ++l) {
        const double cap = p.capacity_bps[l];
        if (load[l] > cap + tolerance * std::max(1.0, cap)) return false;
    }
    return true;
}

}  // namespace hypatia::flowsim
