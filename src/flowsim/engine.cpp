#include "src/flowsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/observability.hpp"
#include "src/obs/recorder.hpp"
#include "src/routing/graph.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/util/thread_pool.hpp"

namespace hypatia::flowsim {
namespace {

std::uint64_t pack_hop(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
           static_cast<std::uint32_t>(to);
}

}  // namespace

Engine::Engine(const core::Scenario& scenario, TrafficMatrix matrix,
               EngineOptions options)
    : scenario_(scenario),
      constellation_(scenario.shell, topo::default_epoch()),
      mobility_(constellation_),
      isls_(topo::build_isls(constellation_, scenario.isl_pattern)),
      matrix_(std::move(matrix)),
      options_(std::move(options)) {
    if (scenario.weather.has_value()) weather_.emplace(*scenario.weather);

    // Fault schedule: the scenario's spec wins; otherwise HYPATIA_FAULTS.
    // An empty resolved schedule is discarded so the epoch loop stays on
    // the plain grid.
    std::optional<fault::FaultSpec> fault_spec = scenario_.faults;
    if (!fault_spec.has_value()) fault_spec = fault::spec_from_env();
    if (fault_spec.has_value() && !fault_spec->empty()) {
        faults_.emplace(fault::FaultSchedule::from_spec(
            *fault_spec, constellation_.num_satellites(), isls_,
            scenario_.ground_stations));
        if (faults_->empty()) faults_.reset();
    }
    matrix_.sort_by_arrival();

    const int num_nodes = constellation_.num_satellites() +
                          static_cast<int>(scenario_.ground_stations.size());
    isl_resource_.reserve(isls_.size() * 2);
    for (std::size_t i = 0; i < isls_.size(); ++i) {
        isl_resource_[pack_hop(isls_[i].sat_a, isls_[i].sat_b)] =
            static_cast<std::uint32_t>(2 * i);
        isl_resource_[pack_hop(isls_[i].sat_b, isls_[i].sat_a)] =
            static_cast<std::uint32_t>(2 * i + 1);
    }
    gsl_base_ = static_cast<std::uint32_t>(2 * isls_.size());
    num_resources_ = gsl_base_ + static_cast<std::uint32_t>(num_nodes);

    auto& m = obs::metrics();
    m.gauge("scenario.num_satellites").set(constellation_.num_satellites());
    m.gauge("scenario.num_ground_stations")
        .set(static_cast<double>(scenario_.ground_stations.size()));
    m.gauge("scenario.num_isls").set(static_cast<double>(isls_.size()));
    m.gauge("flowsim.num_flows").set(static_cast<double>(matrix_.size()));
    m.gauge("flowsim.epoch_ms").set(ns_to_ms(options_.epoch));
}

std::uint32_t Engine::resource_for_hop(int from, int to) const {
    if (from < num_satellites() && to < num_satellites()) {
        const auto it = isl_resource_.find(pack_hop(from, to));
        if (it != isl_resource_.end()) return it->second;
    }
    // Any hop that is not a provisioned ISL serializes on `from`'s shared
    // GSL transmit device — the same contention point the packet model has.
    return gsl_base_ + static_cast<std::uint32_t>(from);
}

route::SnapshotOptions Engine::snapshot_options() {
    route::SnapshotOptions opts;
    opts.include_isls = scenario_.isl_pattern != topo::IslPattern::kNone;
    opts.relay_gs_indices = scenario_.relay_gs_indices;
    opts.gs_nearest_satellite_only = scenario_.gs_nearest_satellite_only;
    if (weather_.has_value()) {
        opts.gsl_range_factor = [this](int gs_index, TimeNs at) {
            return weather_->gsl_range_factor(gs_index, at);
        };
    }
    if (faults_.has_value()) opts.faults = &*faults_;
    return opts;
}

const route::ForwardingState& Engine::compute_epoch_forwarding(
    TimeNs t, const std::vector<int>& dst_gs) {
    std::vector<int> dst_nodes;
    dst_nodes.reserve(dst_gs.size());
    for (const int gs : dst_gs) dst_nodes.push_back(gs_node(gs));

    if (snapshot_mode_ == route::SnapshotMode::kRefresh) {
        const route::Graph* graph;
        {
            HYPATIA_PROFILE_SCOPE("flowsim.snapshot");
            if (!refresher_.has_value()) {
                refresher_.emplace(mobility_, isls_, scenario_.ground_stations,
                                   snapshot_options());
            }
            graph = &refresher_->refresh(orbit_time(t));
        }
        HYPATIA_PROFILE_SCOPE("flowsim.forwarding");
        route::compute_forwarding_into(*graph, dst_nodes, fstate_);
        return fstate_;
    }

    const route::Graph graph = [&] {
        HYPATIA_PROFILE_SCOPE("flowsim.snapshot");
        return route::build_snapshot(mobility_, isls_, scenario_.ground_stations,
                                     orbit_time(t), snapshot_options());
    }();
    HYPATIA_PROFILE_SCOPE("flowsim.forwarding");
    fstate_ = route::compute_forwarding(graph, dst_nodes);
    return fstate_;
}

Engine::EpochProblem Engine::build_problem(const route::ForwardingState& fstate,
                                           const std::vector<std::uint32_t>& active,
                                           TimeNs t) {
    HYPATIA_PROFILE_SCOPE("flowsim.paths");
    EpochProblem ep;
    const double factor =
        options_.capacity_factor ? options_.capacity_factor(t) : 1.0;
    ep.problem.capacity_bps.assign(num_resources_, 0.0);
    for (std::size_t i = 0; i < isls_.size(); ++i) {
        ep.problem.capacity_bps[2 * i] = scenario_.isl_rate_bps * factor;
        ep.problem.capacity_bps[2 * i + 1] = scenario_.isl_rate_bps * factor;
    }
    for (std::uint32_t r = gsl_base_; r < num_resources_; ++r) {
        ep.problem.capacity_bps[r] = scenario_.gsl_rate_bps * factor;
    }

    const int max_hops = num_satellites() +
                         static_cast<int>(scenario_.ground_stations.size());
    // Per-flow path walks read only the forwarding state and the
    // resource map, so they fan out on the pool; the CSR problem is
    // then assembled serially in active-flow (ascending id) order, the
    // same row layout the serial walk produced.
    struct FlowPath {
        std::vector<std::uint32_t> links;
        bool reachable = false;
    };
    const std::vector<FlowPath> paths = util::parallel_map<FlowPath>(
        active.size(), /*chunk=*/64, [&](std::size_t idx) {
            FlowPath fp;
            const Flow& flow = matrix_.flows[active[idx]];
            const int dst_node = gs_node(flow.dst_gs);
            const route::DestinationTree* tree = fstate.tree(dst_node);
            fp.reachable = tree != nullptr;
            int node = gs_node(flow.src_gs);
            while (fp.reachable && node != dst_node) {
                const int nh = tree->next_hop[static_cast<std::size_t>(node)];
                if (nh < 0 || static_cast<int>(fp.links.size()) >= max_hops) {
                    fp.reachable = false;
                    break;
                }
                fp.links.push_back(resource_for_hop(node, nh));
                node = nh;
            }
            return fp;
        });
    ep.flow_of_problem.reserve(active.size());
    for (std::size_t idx = 0; idx < active.size(); ++idx) {
        const std::uint32_t f = active[idx];
        if (!paths[idx].reachable) {
            ep.unreachable.push_back(f);
            continue;
        }
        ep.problem.add_flow(paths[idx].links, matrix_.flows[f].rate_cap_bps);
        ep.flow_of_problem.push_back(f);
    }
    return ep;
}

RunSummary Engine::run() {
    HYPATIA_PROFILE_SCOPE("flowsim.run");
    auto& m = obs::metrics();
    obs::Counter* const created_metric = &m.counter("flowsim.flows_created");
    obs::Counter* const completed_metric = &m.counter("flowsim.flows_completed");
    obs::Counter* const epochs_metric = &m.counter("flowsim.epochs");
    obs::Counter* const unreachable_metric =
        &m.counter("flowsim.unreachable_flow_epochs");
    obs::Gauge* const active_peak = &m.gauge("flowsim.active_flows_peak");
    obs::Histogram* const fct_ms = &m.histogram("flowsim.fct_ms");
    obs::Histogram* const rate_kbps = &m.histogram("flowsim.flow_rate_kbps");
    auto& tracer = obs::tracer();

    isl_utilization_.clear();
    RunSummary summary;
    summary.flows.assign(matrix_.size(), FlowOutcome{});
    summary.tracked_series.resize(options_.tracked_flows.size());
    std::unordered_map<std::size_t, std::size_t> tracked_slot;
    for (std::size_t i = 0; i < options_.tracked_flows.size(); ++i) {
        tracked_slot[options_.tracked_flows[i]] = i;
    }

    std::vector<double> remaining(matrix_.size(), 0.0);
    std::vector<double> rate(matrix_.size(), 0.0);
    std::vector<char> done(matrix_.size(), 0);
    std::vector<std::uint32_t> active;  // ascending flow id (arrival order)
    std::size_t next_arrival = 0;
    const int num_gs = static_cast<int>(scenario_.ground_stations.size());
    std::vector<char> dst_seen(static_cast<std::size_t>(num_gs), 0);

    // Epoch boundaries: the plain epoch grid, plus — with a fault
    // schedule — every fault transition inside the window, so a path
    // severed mid-epoch is observed and re-solved at the exact instant
    // it breaks instead of the next grid point. Without faults this is
    // exactly the historical fixed-step loop. A frozen scenario observes
    // the constant fault state at start_offset, like it observes a
    // constant topology.
    std::vector<TimeNs> boundaries;
    for (TimeNs t = 0; t < options_.duration; t += options_.epoch) {
        boundaries.push_back(t);
    }
    if (faults_.has_value() && !scenario_.freeze) {
        const std::size_t grid_points = boundaries.size();
        std::vector<TimeNs> cuts;
        faults_->change_times_in(orbit_time(0), orbit_time(options_.duration), cuts);
        for (const TimeNs cut : cuts) {
            boundaries.push_back(cut - scenario_.start_offset);
        }
        std::sort(boundaries.begin(), boundaries.end());
        boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                         boundaries.end());
        m.counter("fault.segments").inc(boundaries.size() - grid_points);
    }
    // Flows whose previous segment had a path, for severed detection.
    std::vector<char> was_reachable(matrix_.size(), 0);
    obs::Counter* const severed_metric = &m.counter("fault.flows_severed");

    // --- checkpoint/restore (DESIGN.md §13) ---------------------------
    std::optional<ckpt::Manager> local_ckpt;
    ckpt::Manager* const ckpt_mgr =
        ckpt::Manager::resolve(options_.checkpoint, local_ckpt);

    // Identity of this run's *re-derived* substrate: the arrival-sorted
    // traffic matrix, the boundary grid (epoch grid + fault cuts), the
    // resource layout and link rates. Restore recomputes all of it from
    // the scenario and refuses a checkpoint whose digest disagrees — a
    // resumed run can only ever continue the exact same problem.
    const std::uint64_t state_digest = [&] {
        ckpt::Digest d;
        d.mix<std::uint64_t>(matrix_.size());
        for (const Flow& f : matrix_.flows) {
            d.mix(f.src_gs);
            d.mix(f.dst_gs);
            d.mix(f.arrival);
            d.mix(f.size_bits);
            d.mix(f.rate_cap_bps);
        }
        d.mix(options_.epoch);
        d.mix(options_.duration);
        d.mix<std::uint8_t>(options_.resolve_on_completion ? 1 : 0);
        d.mix<std::uint8_t>(options_.record_link_utilization ? 1 : 0);
        d.mix<std::uint64_t>(options_.tracked_flows.size());
        for (const std::size_t f : options_.tracked_flows) {
            d.mix<std::uint64_t>(f);
        }
        d.mix<std::uint64_t>(boundaries.size());
        for (const TimeNs b : boundaries) d.mix(b);
        d.mix(num_resources_);
        d.mix(scenario_.isl_rate_bps);
        d.mix(scenario_.gsl_rate_bps);
        return d.value();
    }();

    // Everything the loop mutates across boundaries, serialized as the
    // "flowsim.engine" section. `bi` is the next boundary to process:
    // the image captures state *after* boundaries [0, bi).
    const auto save_engine_section = [&](std::size_t bi) {
        ckpt::Writer w;
        w.u64(state_digest);
        w.u64(bi);
        w.u64(next_arrival);
        w.u64(summary.completed);
        w.u8(summary.all_converged ? 1 : 0);
        w.vec(remaining);
        w.vec(rate);
        w.vec(done);
        w.vec(active);
        w.vec(was_reachable);
        w.u64(summary.epochs.size());
        for (const EpochStats& s : summary.epochs) {
            w.i64(s.t);
            w.u64(s.active);
            w.u64(s.arrivals);
            w.u64(s.completions);
            w.u64(s.unreachable);
            w.f64(s.sum_rate_bps);
            w.f64(s.max_link_utilization);
            w.i32(s.solver_rounds);
            w.u8(s.converged ? 1 : 0);
        }
        w.u64(summary.flows.size());
        for (const FlowOutcome& f : summary.flows) {
            w.i64(f.completion);
            w.f64(f.bits_sent);
            w.f64(f.last_rate_bps);
            w.i32(f.unreachable_epochs);
        }
        w.u64(summary.tracked_series.size());
        for (const auto& series : summary.tracked_series) {
            w.u64(series.size());
            for (const auto& [st, sr] : series) {
                w.i64(st);
                w.f64(sr);
            }
        }
        w.u64(isl_utilization_.size());
        for (const auto& per_isl : isl_utilization_) w.vec(per_isl);
        return w.take();
    };

    // Resume: the flow table and outcome accumulators come from the
    // newest good generation; mobility and routing state need nothing —
    // the refresher is lazily created, and a fresh refresher's first
    // refresh(t) is byte-identical to rebuild(t) (the refresh-vs-
    // rebuild invariant), so the resumed epoch forwards exactly like
    // the uninterrupted one.
    std::size_t bi_start = 0;
    if (ckpt_mgr != nullptr && ckpt_mgr->policy().resume) {
        if (const std::optional<ckpt::Checkpoint> saved =
                ckpt_mgr->load_latest()) {
            try {
                const ckpt::Section* section = saved->find("flowsim.engine");
                if (section == nullptr) {
                    throw ckpt::CorruptError("no flowsim.engine section");
                }
                ckpt::Reader r(section->payload);
                if (r.u64() != state_digest) {
                    throw ckpt::CorruptError(
                        "state digest mismatch (different scenario/matrix)");
                }
                // Parse into temporaries, commit only after every read
                // and shape check passed.
                const std::uint64_t bi = r.u64();
                const std::uint64_t r_next_arrival = r.u64();
                const std::uint64_t r_completed = r.u64();
                const bool r_all_converged = r.u8() != 0;
                std::vector<double> r_remaining, r_rate;
                std::vector<char> r_done, r_was;
                std::vector<std::uint32_t> r_active;
                r.vec(r_remaining);
                r.vec(r_rate);
                r.vec(r_done);
                r.vec(r_active);
                r.vec(r_was);
                std::vector<EpochStats> r_epochs(r.u64());
                for (EpochStats& s : r_epochs) {
                    s.t = r.i64();
                    s.active = static_cast<std::size_t>(r.u64());
                    s.arrivals = static_cast<std::size_t>(r.u64());
                    s.completions = static_cast<std::size_t>(r.u64());
                    s.unreachable = static_cast<std::size_t>(r.u64());
                    s.sum_rate_bps = r.f64();
                    s.max_link_utilization = r.f64();
                    s.solver_rounds = r.i32();
                    s.converged = r.u8() != 0;
                }
                std::vector<FlowOutcome> r_flows(r.u64());
                for (FlowOutcome& f : r_flows) {
                    f.completion = r.i64();
                    f.bits_sent = r.f64();
                    f.last_rate_bps = r.f64();
                    f.unreachable_epochs = r.i32();
                }
                std::vector<std::vector<std::pair<TimeNs, double>>> r_tracked(
                    r.u64());
                for (auto& series : r_tracked) {
                    series.resize(r.u64());
                    for (auto& [st, sr] : series) {
                        st = r.i64();
                        sr = r.f64();
                    }
                }
                std::vector<std::vector<double>> r_util(r.u64());
                for (auto& per_isl : r_util) r.vec(per_isl);
                if (bi > boundaries.size() || r_next_arrival > matrix_.size() ||
                    r_remaining.size() != matrix_.size() ||
                    r_rate.size() != matrix_.size() ||
                    r_done.size() != matrix_.size() ||
                    r_was.size() != matrix_.size() ||
                    r_flows.size() != matrix_.size() ||
                    r_tracked.size() != summary.tracked_series.size()) {
                    throw ckpt::CorruptError("engine section shape mismatch");
                }
                next_arrival = static_cast<std::size_t>(r_next_arrival);
                summary.completed = static_cast<std::size_t>(r_completed);
                summary.all_converged = r_all_converged;
                remaining = std::move(r_remaining);
                rate = std::move(r_rate);
                done = std::move(r_done);
                was_reachable = std::move(r_was);
                active = std::move(r_active);
                summary.epochs = std::move(r_epochs);
                summary.flows = std::move(r_flows);
                summary.tracked_series = std::move(r_tracked);
                isl_utilization_ = std::move(r_util);
                bi_start = static_cast<std::size_t>(bi);
                // Metrics last: overwrites everything this constructor
                // and the restore above incremented, so /metrics of the
                // resumed process match the uninterrupted run's.
                if (const ckpt::Section* ms = saved->find("obs.metrics")) {
                    ckpt::Reader mr(ms->payload);
                    ckpt::restore_metrics_section(mr);
                }
            } catch (const ckpt::CorruptError& e) {
                std::fprintf(stderr,
                             "hypatia: not resuming from checkpoint (%s)\n",
                             e.what());
                m.counter("ckpt.restore_rejected").inc();
                bi_start = 0;
            }
        }
    }

    const auto complete_flow = [&](std::uint32_t f, TimeNs at) {
        done[f] = 1;
        FlowOutcome& outcome = summary.flows[f];
        outcome.completion = at;
        ++summary.completed;
        completed_metric->inc();
        fct_ms->record(static_cast<std::uint64_t>(
            std::max<TimeNs>(0, at - matrix_.flows[f].arrival) / kNsPerMs));
        rate_kbps->record(static_cast<std::uint64_t>(rate[f] / 1e3));
        if (tracer.enabled(obs::TraceCategory::kFlow)) {
            tracer.emit(obs::make_record(
                at, obs::TraceCategory::kFlow, "flow.complete",
                matrix_.flows[f].src_gs, matrix_.flows[f].dst_gs, f,
                static_cast<std::int64_t>(outcome.bits_sent), rate[f]));
        }
    };

    for (std::size_t bi = bi_start; bi < boundaries.size(); ++bi) {
        const TimeNs t = boundaries[bi];
        // Checkpoint at the boundary: the encoded image is everything
        // accumulated through boundaries [0, bi), so a resumed run
        // re-enters the loop exactly here. A durable write happens when
        // the interval is due; otherwise the image is armed for the
        // fatal-signal / shutdown flush.
        if (ckpt_mgr != nullptr && bi > bi_start) {
            ckpt::Checkpoint ck;
            ck.epoch_index = bi;
            ck.sim_time = t;
            ck.add("flowsim.engine", save_engine_section(bi));
            ckpt::Writer mw;
            ckpt::save_metrics_section(mw);
            ck.add("obs.metrics", mw.take());
            if (ckpt_mgr->due()) {
                ckpt_mgr->write(std::move(ck));
            } else {
                ckpt_mgr->arm(std::move(ck));
            }
        }
        // Flight recorder: fault transitions this segment boundary just
        // crossed, stamped in sim time like every other flowsim event.
        if (faults_.has_value() && !scenario_.freeze) {
            const TimeNs prev_sim_t = bi > 0 ? boundaries[bi - 1] : t - options_.epoch;
            fault::record_transitions(*faults_, orbit_time(prev_sim_t), orbit_time(t),
                                      -scenario_.start_offset);
        }
        const TimeNs t_next =
            bi + 1 < boundaries.size() ? boundaries[bi + 1] : options_.duration;
        const TimeNs dt = t_next - t;
        const double dt_s = ns_to_seconds(dt);
        EpochStats stats;
        stats.t = t;

        while (next_arrival < matrix_.size() &&
               matrix_.flows[next_arrival].arrival <= t) {
            const auto f = static_cast<std::uint32_t>(next_arrival);
            active.push_back(f);
            remaining[f] = matrix_.flows[f].size_bits;
            ++stats.arrivals;
            created_metric->inc();
            if (tracer.enabled(obs::TraceCategory::kFlow)) {
                tracer.emit(obs::make_record(
                    t, obs::TraceCategory::kFlow, "flow.arrive",
                    matrix_.flows[f].src_gs, matrix_.flows[f].dst_gs, f,
                    matrix_.flows[f].size_bits == kUnboundedSize
                        ? -1
                        : static_cast<std::int64_t>(matrix_.flows[f].size_bits)));
            }
            ++next_arrival;
        }
        stats.active = active.size();
        active_peak->set_max(static_cast<double>(active.size()));

        // Distinct destinations of the active flows, ascending.
        std::fill(dst_seen.begin(), dst_seen.end(), 0);
        for (const std::uint32_t f : active) {
            dst_seen[static_cast<std::size_t>(matrix_.flows[f].dst_gs)] = 1;
        }
        std::vector<int> dst_gs;
        for (int g = 0; g < num_gs; ++g) {
            if (dst_seen[static_cast<std::size_t>(g)]) dst_gs.push_back(g);
        }

        const route::ForwardingState& fstate = compute_epoch_forwarding(t, dst_gs);
        EpochProblem ep = build_problem(fstate, active, t);
        FairShareResult solution = solve_max_min(ep.problem);
        stats.solver_rounds = solution.rounds;
        stats.converged = solution.converged;
        summary.all_converged = summary.all_converged && solution.converged;

        for (std::size_t row = 0; row < ep.flow_of_problem.size(); ++row) {
            rate[ep.flow_of_problem[row]] = solution.rate_bps[row];
            stats.sum_rate_bps += solution.rate_bps[row];
        }
        for (const std::uint32_t f : ep.unreachable) {
            rate[f] = 0.0;
            ++summary.flows[f].unreachable_epochs;
        }
        stats.unreachable = ep.unreachable.size();
        unreachable_metric->inc(ep.unreachable.size());
        obs::recorder().record(obs::EventKind::kFlowResolve, t,
                               static_cast<std::int32_t>(active.size()),
                               static_cast<std::int32_t>(solution.rounds),
                               static_cast<std::int32_t>(ep.unreachable.size()), -1,
                               stats.sum_rate_bps);

        // Severed flows: had a path last segment, lost it this one. The
        // flow stalls at rate 0 (or reroutes transparently if Dijkstra
        // found an alternative, in which case it never appears here).
        if (faults_.has_value()) {
            for (const std::uint32_t f : ep.unreachable) {
                if (was_reachable[f] != 0) {
                    severed_metric->inc();
                    obs::recorder().record(obs::EventKind::kFlowSevered, t,
                                           matrix_.flows[f].src_gs,
                                           matrix_.flows[f].dst_gs,
                                           static_cast<std::int32_t>(f));
                    if (tracer.enabled(obs::TraceCategory::kFault)) {
                        tracer.emit(obs::make_record(
                            t, obs::TraceCategory::kFault, "fault.flow_severed",
                            matrix_.flows[f].src_gs, matrix_.flows[f].dst_gs, f));
                    }
                }
                was_reachable[f] = 0;
            }
            for (const std::uint32_t f : ep.flow_of_problem) was_reachable[f] = 1;
        }

        // Per-resource load (for the utilization map and overload check).
        if (options_.record_link_utilization) {
            std::vector<double> load(num_resources_, 0.0);
            for (std::size_t row = 0; row < ep.flow_of_problem.size(); ++row) {
                const double r = solution.rate_bps[row];
                for (std::uint32_t i = ep.problem.flow_offset[row];
                     i < ep.problem.flow_offset[row + 1]; ++i) {
                    load[ep.problem.flow_links[i]] += r;
                }
            }
            std::vector<double> per_isl(isls_.size(), 0.0);
            for (std::size_t i = 0; i < isls_.size(); ++i) {
                const double cap = ep.problem.capacity_bps[2 * i];
                if (cap > 0.0) {
                    per_isl[i] = std::max(load[2 * i], load[2 * i + 1]) / cap;
                }
                stats.max_link_utilization =
                    std::max(stats.max_link_utilization, per_isl[i]);
            }
            for (std::uint32_t r = gsl_base_; r < num_resources_; ++r) {
                const double cap = ep.problem.capacity_bps[r];
                if (cap > 0.0) {
                    stats.max_link_utilization =
                        std::max(stats.max_link_utilization, load[r] / cap);
                }
            }
            isl_utilization_.push_back(std::move(per_isl));
        }

        for (const auto& [flow_id, slot] : tracked_slot) {
            if (!done[flow_id] && flow_id < matrix_.size()) {
                const bool is_active =
                    std::binary_search(active.begin(), active.end(),
                                       static_cast<std::uint32_t>(flow_id));
                if (is_active) {
                    summary.tracked_series[slot].emplace_back(t, rate[flow_id]);
                }
            }
        }

        // Advance the fluid state to the next epoch boundary.
        {
            HYPATIA_PROFILE_SCOPE("flowsim.advance");
            double advanced_s = 0.0;
            while (true) {
                // Earliest mid-epoch completion (only consulted when
                // resolve_on_completion re-solves afterwards).
                double next_completion_s = kNoRateCap;
                if (options_.resolve_on_completion) {
                    for (const std::uint32_t f : active) {
                        if (remaining[f] != kUnboundedSize && rate[f] > 0.0) {
                            next_completion_s = std::min(
                                next_completion_s, remaining[f] / rate[f]);
                        }
                    }
                }
                const double window_s = dt_s - advanced_s;
                if (!options_.resolve_on_completion ||
                    next_completion_s >= window_s) {
                    for (const std::uint32_t f : active) {
                        FlowOutcome& outcome = summary.flows[f];
                        outcome.last_rate_bps = rate[f];
                        if (remaining[f] == kUnboundedSize) {
                            outcome.bits_sent += rate[f] * window_s;
                            continue;
                        }
                        const double sent = rate[f] * window_s;
                        if (rate[f] > 0.0 && remaining[f] <= sent) {
                            outcome.bits_sent += remaining[f];
                            const TimeNs at =
                                t + seconds_to_ns(advanced_s +
                                                  remaining[f] / rate[f]);
                            remaining[f] = 0.0;
                            complete_flow(f, at);
                            ++stats.completions;
                        } else {
                            outcome.bits_sent += sent;
                            remaining[f] -= sent;
                        }
                    }
                    break;
                }
                // Exact-fluid mode: advance to the completion instant,
                // retire finished flows and re-solve on the same paths.
                for (const std::uint32_t f : active) {
                    FlowOutcome& outcome = summary.flows[f];
                    outcome.last_rate_bps = rate[f];
                    const double sent = rate[f] * next_completion_s;
                    if (remaining[f] == kUnboundedSize) {
                        outcome.bits_sent += sent;
                        continue;
                    }
                    outcome.bits_sent += std::min(sent, remaining[f]);
                    remaining[f] = std::max(0.0, remaining[f] - sent);
                }
                advanced_s += next_completion_s;
                const TimeNs at = t + seconds_to_ns(advanced_s);
                for (const std::uint32_t f : active) {
                    if (!done[f] && remaining[f] <= 1e-6 &&
                        remaining[f] != kUnboundedSize) {
                        complete_flow(f, at);
                        ++stats.completions;
                    }
                }
                active.erase(std::remove_if(active.begin(), active.end(),
                                            [&](std::uint32_t f) { return done[f]; }),
                             active.end());
                ep = build_problem(fstate, active, t);
                solution = solve_max_min(ep.problem);
                summary.all_converged = summary.all_converged && solution.converged;
                for (std::size_t row = 0; row < ep.flow_of_problem.size(); ++row) {
                    rate[ep.flow_of_problem[row]] = solution.rate_bps[row];
                }
                for (const std::uint32_t f : ep.unreachable) rate[f] = 0.0;
            }
        }
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [&](std::uint32_t f) { return done[f]; }),
                     active.end());

        epochs_metric->inc();
        if (tracer.enabled(obs::TraceCategory::kFlow)) {
            tracer.emit(obs::make_record(t, obs::TraceCategory::kFlow, "flow.epoch",
                                         -1, -1, 0,
                                         static_cast<std::int64_t>(stats.active),
                                         stats.sum_rate_bps));
        }
        summary.epochs.push_back(stats);
        if (options_.epoch_hook && !options_.epoch_hook(bi, t)) {
            return summary;
        }
    }
    // Normal completion: the run's outputs are in the caller's hands,
    // nothing left worth flushing on a later crash.
    if (ckpt_mgr != nullptr) ckpt_mgr->disarm();

    // Flows still active at the end contribute their final allocation to
    // the rate distribution (completed flows recorded at completion).
    for (const std::uint32_t f : active) {
        rate_kbps->record(static_cast<std::uint64_t>(rate[f] / 1e3));
    }
    return summary;
}

}  // namespace hypatia::flowsim
