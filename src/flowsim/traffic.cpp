#include "src/flowsim/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <tuple>

namespace hypatia::flowsim {
namespace {

// Uniform double in [0, 1) from the top 53 bits — identical on every
// platform, unlike std::uniform_real_distribution.
double u01(std::mt19937_64& gen) {
    return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

double exponential(std::mt19937_64& gen, double mean) {
    return -mean * std::log1p(-u01(gen));
}

// Uniform integer in [0, n) by rejection-free scaling (the tiny modulo
// bias is irrelevant for workload generation; determinism is not).
int uniform_below(std::mt19937_64& gen, int n) {
    return static_cast<int>(gen() % static_cast<std::uint64_t>(n));
}

// Samples an index from cumulative weights (last entry = total).
int sample_cumulative(std::mt19937_64& gen, const std::vector<double>& cumulative) {
    const double u = u01(gen) * cumulative.back();
    const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
    return static_cast<int>(it - cumulative.begin());
}

}  // namespace

void TrafficMatrix::sort_by_arrival() {
    std::sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
        return std::tie(a.arrival, a.src_gs, a.dst_gs, a.size_bits) <
               std::tie(b.arrival, b.src_gs, b.dst_gs, b.size_bits);
    });
}

void TrafficMatrix::merge(const TrafficMatrix& other) {
    flows.insert(flows.end(), other.flows.begin(), other.flows.end());
    sort_by_arrival();
}

TrafficMatrix poisson_traffic(const PoissonTrafficConfig& config) {
    TrafficMatrix matrix;
    std::mt19937_64 gen(config.seed);
    const double mean_gap_s =
        config.arrivals_per_s > 0.0 ? 1.0 / config.arrivals_per_s : 0.0;
    double t_s = 0.0;
    while (true) {
        t_s += exponential(gen, mean_gap_s);
        const TimeNs arrival = seconds_to_ns(t_s);
        if (arrival >= config.window) break;
        Flow flow;
        flow.arrival = arrival;
        flow.src_gs = uniform_below(gen, config.num_gs);
        flow.dst_gs = uniform_below(gen, config.num_gs - 1);
        if (flow.dst_gs >= flow.src_gs) ++flow.dst_gs;  // distinct endpoints
        flow.size_bits = std::max(1.0, exponential(gen, config.mean_size_bits));
        matrix.flows.push_back(flow);
    }
    matrix.sort_by_arrival();
    return matrix;
}

TrafficMatrix gravity_traffic(const GravityTrafficConfig& config) {
    // Cumulative gravity weights over cities: w_i = 1 / (1 + rank)^alpha.
    std::vector<double> cumulative(static_cast<std::size_t>(config.num_gs));
    double total = 0.0;
    for (int i = 0; i < config.num_gs; ++i) {
        total += 1.0 / std::pow(1.0 + i, config.rank_alpha);
        cumulative[static_cast<std::size_t>(i)] = total;
    }

    TrafficMatrix matrix;
    matrix.flows.reserve(config.num_flows);
    std::mt19937_64 gen(config.seed);
    for (std::size_t f = 0; f < config.num_flows; ++f) {
        Flow flow;
        flow.src_gs = sample_cumulative(gen, cumulative);
        do {
            flow.dst_gs = sample_cumulative(gen, cumulative);
        } while (flow.dst_gs == flow.src_gs);
        flow.arrival = config.window > 0
                           ? static_cast<TimeNs>(u01(gen) *
                                                 static_cast<double>(config.window))
                           : 0;
        flow.size_bits = config.size_bits;
        matrix.flows.push_back(flow);
    }
    matrix.sort_by_arrival();
    return matrix;
}

TrafficMatrix cbr_background(const std::vector<route::GsPair>& pairs,
                             double rate_cap_bps) {
    TrafficMatrix matrix;
    matrix.flows.reserve(pairs.size());
    for (const auto& pair : pairs) {
        Flow flow;
        flow.src_gs = pair.src_gs;
        flow.dst_gs = pair.dst_gs;
        flow.rate_cap_bps = rate_cap_bps;
        matrix.flows.push_back(flow);
    }
    matrix.sort_by_arrival();
    return matrix;
}

}  // namespace hypatia::flowsim
