// Flow and traffic-matrix model for the flow-level engine. Three seeded,
// fully deterministic demand generators (all randomness is inverse-
// transform sampling over a private mt19937_64, so the same seed yields
// the same matrix on every platform):
//  * poisson_traffic  — network-wide Poisson flow arrivals with
//    exponential sizes and uniform-random distinct city pairs (the
//    classic "many short flows" workload).
//  * gravity_traffic  — city pairs drawn from a gravity model over the
//    top-100 cities: p(i, j) proportional to w_i * w_j with w = 1 /
//    (1 + population_rank)^alpha, the standard population-proxy when the
//    dataset is rank-ordered (ours is).
//  * cbr_background   — constant-bit-rate background load: one
//    rate-capped, never-ending flow per given pair, active from t = 0.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/routing/path_analysis.hpp"
#include "src/util/units.hpp"

namespace hypatia::flowsim {

inline constexpr double kUnboundedSize = std::numeric_limits<double>::infinity();

/// One demand: `size_bits` of traffic from `src_gs` to `dst_gs`, offered
/// at `arrival`. Unbounded-size flows run until the simulation ends;
/// `rate_cap_bps` bounds the rate the flow will ever take (CBR sources).
struct Flow {
    int src_gs = 0;
    int dst_gs = 0;
    TimeNs arrival = 0;
    double size_bits = kUnboundedSize;
    double rate_cap_bps = std::numeric_limits<double>::infinity();
};

/// An arrival-ordered list of flows. Flow ids used by the engine, traces
/// and results are indices into `flows` after sort_by_arrival().
struct TrafficMatrix {
    std::vector<Flow> flows;

    std::size_t size() const { return flows.size(); }

    /// Sorts by (arrival, src, dst, size) — a total, deterministic order.
    void sort_by_arrival();

    /// Appends `other` and re-sorts.
    void merge(const TrafficMatrix& other);
};

struct PoissonTrafficConfig {
    int num_gs = 100;
    double arrivals_per_s = 100.0;   // network-wide arrival rate
    double mean_size_bits = 8e6;     // exponential flow sizes (1 MB mean)
    TimeNs window = 100 * kNsPerSec; // arrivals fall in [0, window)
    unsigned seed = 1;
};

struct GravityTrafficConfig {
    int num_gs = 100;
    std::size_t num_flows = 1000;
    double rank_alpha = 1.0;           // w_i = 1 / (1 + rank_i)^alpha
    double size_bits = kUnboundedSize; // finite value => finite flows
    TimeNs window = 0;                 // 0: all at t = 0; else uniform in window
    unsigned seed = 1;
};

TrafficMatrix poisson_traffic(const PoissonTrafficConfig& config);
TrafficMatrix gravity_traffic(const GravityTrafficConfig& config);

/// One unbounded flow per pair at `rate_cap_bps`, all arriving at t = 0.
TrafficMatrix cbr_background(const std::vector<route::GsPair>& pairs,
                             double rate_cap_bps);

}  // namespace hypatia::flowsim
