// Max-min fair-share rate allocation by progressive filling (the classic
// water-filling construction, e.g. Bertsekas & Gallager §6.5.2): every
// active flow's rate rises from zero at the same speed; when a link
// saturates, all flows crossing it freeze at the current level and the
// remaining flows keep rising. The result is the unique max-min fair
// allocation: no flow's rate can be increased without decreasing the rate
// of a flow that is no larger.
//
// Flows may carry a finite rate cap (constant-bit-rate background load
// caps itself below the fair share); a capped flow freezes when the fill
// level reaches its cap, exactly like hitting a private bottleneck link.
//
// The solver is pure (no topology knowledge): callers present flows as
// index lists into a flat resource-capacity vector. The engine maps
// directed ISLs and GSL transmit devices onto those resources.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace hypatia::flowsim {

inline constexpr double kNoRateCap = std::numeric_limits<double>::infinity();

/// One allocation problem: `num_flows()` flows over `capacity_bps.size()`
/// resources. Flow f crosses the resources
/// `flow_links[flow_offset[f] .. flow_offset[f+1])`. A flow with an empty
/// link list is only limited by its cap (unreachable flows should not be
/// submitted at all — give them rate 0 upstream).
struct FairShareProblem {
    std::vector<double> capacity_bps;
    std::vector<std::uint32_t> flow_links;
    std::vector<std::uint32_t> flow_offset{0};  // size num_flows() + 1
    std::vector<double> rate_cap_bps;           // empty = no flow capped

    std::size_t num_flows() const { return flow_offset.size() - 1; }

    /// Appends one flow crossing `links` (indices into capacity_bps).
    void add_flow(const std::vector<std::uint32_t>& links, double cap = kNoRateCap);
};

struct FairShareResult {
    std::vector<double> rate_bps;  // per flow, parallel to the problem
    int rounds = 0;                // progressive-filling iterations
    /// False only if the iteration failed to freeze every flow within the
    /// theoretical bound (indicates a bug or NaN capacities); rates are
    /// still returned for the flows that froze.
    bool converged = true;
};

/// Solves the max-min fair allocation. O(rounds * links + total path
/// length); rounds is bounded by the number of distinct bottlenecks.
FairShareResult solve_max_min(const FairShareProblem& problem);

/// True if `rates` is feasible: no resource carries more than
/// `capacity_bps * (1 + tolerance)`. Exposed for tests and CI assertions.
bool allocation_feasible(const FairShareProblem& problem,
                         const std::vector<double>& rates, double tolerance = 1e-9);

}  // namespace hypatia::flowsim
