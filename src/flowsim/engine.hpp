// The flow-level simulation engine: Hypatia's routing/mobility substrate
// with the packet layer replaced by a fluid model. Instead of per-packet
// events, every re-route epoch (default 1 s) the engine
//   1. brings the topology snapshot to the epoch time (SGP4 mobility +
//      ISLs + GSL visibility, weather hooks included; in-place refresh
//      by default, full rebuild under HYPATIA_SNAPSHOT_MODE=rebuild),
//   2. recomputes per-destination forwarding trees (same Dijkstra the
//      packet simulator installs),
//   3. walks each active flow's path and maps its hops onto transmit
//      resources (one per ISL direction, one per node's shared GSL
//      device — the same serialization points the packet model has), and
//   4. solves the max-min fair-share problem for all active flows.
// Rates then stay constant until the next epoch; finite flows complete at
// the exact fluid time. The cost per epoch is O(Dijkstra * destinations +
// total path length + solver), independent of rate x duration — the
// scaling axis where packet-level simulation hits the paper's Fig. 2
// wall. The price is per-packet fidelity: no queueing delay, loss or
// cwnd dynamics, and capacity freed mid-epoch is only reallocated at the
// next epoch boundary (or immediately with resolve_on_completion).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ckpt/checkpoint.hpp"
#include "src/core/scenario.hpp"
#include "src/fault/fault.hpp"
#include "src/flowsim/solver.hpp"
#include "src/flowsim/traffic.hpp"
#include "src/routing/forwarding.hpp"
#include "src/routing/snapshot_refresh.hpp"
#include "src/topology/mobility.hpp"
#include "src/topology/weather.hpp"

namespace hypatia::flowsim {

struct EngineOptions {
    /// Re-route / re-solve interval. Coarser than the packet simulator's
    /// 100 ms fstate interval by default: a fluid model has no per-packet
    /// state to keep consistent between installs.
    TimeNs epoch = kNsPerSec;
    TimeNs duration = 200 * kNsPerSec;
    /// Re-solve the rate allocation whenever a flow completes mid-epoch
    /// (exact fluid dynamics; costs one solver run per completion).
    /// Off by default: freed capacity waits for the epoch boundary.
    bool resolve_on_completion = false;
    /// Record per-epoch, per-ISL utilization (for the viz exporters).
    bool record_link_utilization = false;
    /// Flow ids (matrix indices) whose (t, rate) series to record.
    std::vector<std::size_t> tracked_flows;
    /// Optional capacity scaling: all link capacities are multiplied by
    /// this factor at each epoch (models brownouts / capacity changes).
    std::function<double(TimeNs)> capacity_factor;
    /// Checkpoint/restore policy (DESIGN.md §13). Disengaged (the
    /// default) resolves HYPATIA_CKPT_* through ckpt::Manager::global();
    /// an explicit Policy overrides the environment, and
    /// ckpt::Policy::disabled() turns checkpointing off regardless (the
    /// emu exporter's inner background engine does this so it never
    /// collides with the outer pacer's checkpoint directory).
    std::optional<ckpt::Policy> checkpoint;
    /// Called after each epoch boundary finishes; returning false stops
    /// the run early with the partial summary. Tests use this to
    /// interrupt a run at a deterministic point and resume it.
    std::function<bool(std::size_t boundary_index, TimeNs t)> epoch_hook;
};

/// Per-flow outcome after run().
struct FlowOutcome {
    TimeNs completion = -1;       // -1: still active (or never arrived) at end
    double bits_sent = 0.0;
    double last_rate_bps = 0.0;   // allocation in the flow's final epoch
    int unreachable_epochs = 0;   // epochs spent with no path
};

/// Per-epoch aggregate.
struct EpochStats {
    TimeNs t = 0;
    std::size_t active = 0;       // flows in this epoch's allocation
    std::size_t arrivals = 0;
    std::size_t completions = 0;  // completed before the next epoch
    std::size_t unreachable = 0;
    double sum_rate_bps = 0.0;
    double max_link_utilization = 0.0;
    int solver_rounds = 0;
    bool converged = true;
};

struct RunSummary {
    std::vector<EpochStats> epochs;
    std::vector<FlowOutcome> flows;     // parallel to the traffic matrix
    /// (t, rate) series for each EngineOptions::tracked_flows entry.
    std::vector<std::vector<std::pair<TimeNs, double>>> tracked_series;
    std::size_t completed = 0;
    bool all_converged = true;

    double completion_rate() const {
        return flows.empty() ? 0.0
                             : static_cast<double>(completed) /
                                   static_cast<double>(flows.size());
    }
};

class Engine {
  public:
    /// The scenario supplies constellation, ground stations, link rates
    /// and the weather/GS-policy knobs; the packet-level fields (queue
    /// sizes, fstate_interval) are ignored.
    Engine(const core::Scenario& scenario, TrafficMatrix matrix,
           EngineOptions options = {});

    RunSummary run();

    // --- substrate access (viz exporters, tests) -----------------------
    const core::Scenario& scenario() const { return scenario_; }
    const topo::SatelliteMobility& mobility() const { return mobility_; }
    const std::vector<topo::Isl>& isls() const { return isls_; }
    const TrafficMatrix& matrix() const { return matrix_; }
    int num_satellites() const { return constellation_.num_satellites(); }
    int gs_node(int gs_index) const { return num_satellites() + gs_index; }
    TimeNs orbit_time(TimeNs sim_time) const {
        return scenario_.freeze ? scenario_.start_offset
                                : scenario_.start_offset + sim_time;
    }
    TimeNs epoch_interval() const { return options_.epoch; }

    /// Utilization in [0, 1] of ISL `isl_index` (max of both directions)
    /// during epoch `epoch`; requires record_link_utilization.
    double isl_utilization(std::size_t epoch, std::size_t isl_index) const {
        return isl_utilization_[epoch][isl_index];
    }
    std::size_t num_recorded_epochs() const { return isl_utilization_.size(); }

  private:
    struct EpochProblem {
        FairShareProblem problem;
        std::vector<std::uint32_t> flow_of_problem;  // problem row -> flow id
        std::vector<std::uint32_t> unreachable;      // active but pathless
    };

    /// Brings fstate_ to epoch `t` for the given destinations and returns
    /// it. Refresh mode (the default) updates one long-lived graph and
    /// recycles the tree buffers; HYPATIA_SNAPSHOT_MODE=rebuild rebuilds
    /// both from scratch. Outputs are byte-identical either way.
    const route::ForwardingState& compute_epoch_forwarding(
        TimeNs t, const std::vector<int>& dst_gs);
    route::SnapshotOptions snapshot_options();
    EpochProblem build_problem(const route::ForwardingState& fstate,
                               const std::vector<std::uint32_t>& active, TimeNs t);
    std::uint32_t resource_for_hop(int from, int to) const;

    core::Scenario scenario_;
    topo::Constellation constellation_;
    topo::SatelliteMobility mobility_;
    std::vector<topo::Isl> isls_;
    std::optional<topo::WeatherModel> weather_;
    /// Resolved fault schedule (scenario spec or HYPATIA_FAULTS);
    /// disengaged when neither yields any outage. With a schedule, run()
    /// splits epochs at fault transitions so severed flows stall or
    /// reroute at the exact instant, and rate conservation (bits_sent
    /// integrates the allocated rate, severed flows allocate zero) is
    /// preserved across the extra boundaries.
    std::optional<fault::FaultSchedule> faults_;
    TrafficMatrix matrix_;
    EngineOptions options_;

    route::SnapshotMode snapshot_mode_ = route::snapshot_mode_from_env();
    std::optional<route::SnapshotRefresher> refresher_;  // lazy, refresh mode
    route::ForwardingState fstate_;  // recycled across epochs

    // Resource layout: [2 * isl_index + direction] then [gsl_base_ + node].
    std::unordered_map<std::uint64_t, std::uint32_t> isl_resource_;
    std::uint32_t gsl_base_ = 0;
    std::uint32_t num_resources_ = 0;

    std::vector<std::vector<double>> isl_utilization_;  // [epoch][isl]
};

}  // namespace hypatia::flowsim
