#include "src/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hypatia::obs::json {

namespace {

[[noreturn]] void type_error(const char* wanted, Value::Type got) {
    throw std::logic_error(std::string("json: value is not ") + wanted +
                           " (type " + std::to_string(static_cast<int>(got)) + ")");
}

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_number(std::string& out, double d) {
    if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
        out += "null";
        return;
    }
    // Integers (the common case for counters) print without an exponent.
    if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", d);
    out += buf;
}

class Parser {
  public:
    /// Containers deeper than this fail with a parse error instead of
    /// recursing toward a stack overflow. 256 is far beyond any
    /// manifest/trace document and well inside the stack budget.
    static constexpr int kMaxDepth = 256;

    explicit Parser(const std::string& text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at byte " + std::to_string(pos_) +
                                 ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    Value parse_value() {
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Value(parse_string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return Value(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return Value(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return Value();
            default: return parse_number();
        }
    }

    void enter_container() {
        if (++depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
    }

    Value parse_object() {
        enter_container();
        expect('{');
        Object obj;
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return Value(std::move(obj));
        }
        while (true) {
            if (peek() != '"') fail("expected object key");
            std::string key = parse_string();
            expect(':');
            obj[std::move(key)] = parse_value();
            const char c = peek();
            ++pos_;
            if (c == '}') {
                --depth_;
                return Value(std::move(obj));
            }
            if (c != ',') fail("expected ',' or '}'");
        }
    }

    Value parse_array() {
        enter_container();
        expect('[');
        Array arr;
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return Value(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            const char c = peek();
            ++pos_;
            if (c == ']') {
                --depth_;
                return Value(std::move(arr));
            }
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned code = parse_hex4();
                    // Surrogate handling: a high surrogate followed by
                    // \uDC00-\uDFFF combines into one supplementary code
                    // point; a lone surrogate (either half) decodes to
                    // U+FFFD REPLACEMENT CHARACTER rather than emitting
                    // an invalid UTF-8 surrogate encoding.
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                            text_[pos_ + 1] == 'u') {
                            const std::size_t save = pos_;
                            pos_ += 2;
                            const unsigned low = parse_hex4();
                            if (low >= 0xDC00 && low <= 0xDFFF) {
                                code = 0x10000 + ((code - 0xD800) << 10) +
                                       (low - 0xDC00);
                            } else {
                                pos_ = save;  // re-parse as its own escape
                                code = 0xFFFD;
                            }
                        } else {
                            code = 0xFFFD;
                        }
                    } else if (code >= 0xDC00 && code <= 0xDFFF) {
                        code = 0xFFFD;
                    }
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else if (code < 0x10000) {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xF0 | (code >> 18));
                        out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    unsigned parse_hex4() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
        }
        return code;
    }

    Value parse_number() {
        skip_ws();
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start) fail("bad number");
        pos_ += static_cast<std::size_t>(end - start);
        return Value(d);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

}  // namespace

bool Value::as_bool() const {
    if (type_ != Type::kBool) type_error("a bool", type_);
    return bool_;
}

double Value::as_number() const {
    if (type_ != Type::kNumber) type_error("a number", type_);
    return number_;
}

const std::string& Value::as_string() const {
    if (type_ != Type::kString) type_error("a string", type_);
    return string_;
}

const Array& Value::as_array() const {
    if (type_ != Type::kArray) type_error("an array", type_);
    return array_;
}

const Object& Value::as_object() const {
    if (type_ != Type::kObject) type_error("an object", type_);
    return object_;
}

Value& Value::operator[](const std::string& key) {
    if (type_ == Type::kNull) type_ = Type::kObject;
    if (type_ != Type::kObject) type_error("an object", type_);
    return object_[key];
}

const Value& Value::at(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::out_of_range("json: missing key '" + key + "'");
    return it->second;
}

bool Value::contains(const std::string& key) const {
    return type_ == Type::kObject && object_.count(key) > 0;
}

void Value::push_back(Value v) {
    if (type_ == Type::kNull) type_ = Type::kArray;
    if (type_ != Type::kArray) type_error("an array", type_);
    array_.push_back(std::move(v));
}

void Value::dump_to(std::string& out, int indent, int depth) const {
    const bool pretty = indent >= 0;
    const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
    const std::string close_pad = pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
    const char* nl = pretty ? "\n" : "";
    const char* colon = pretty ? ": " : ":";

    switch (type_) {
        case Type::kNull: out += "null"; break;
        case Type::kBool: out += bool_ ? "true" : "false"; break;
        case Type::kNumber: append_number(out, number_); break;
        case Type::kString: append_escaped(out, string_); break;
        case Type::kArray: {
            if (array_.empty()) {
                out += "[]";
                break;
            }
            out += '[';
            out += nl;
            for (std::size_t i = 0; i < array_.size(); ++i) {
                out += pad;
                array_[i].dump_to(out, indent, depth + 1);
                if (i + 1 < array_.size()) out += ',';
                out += nl;
            }
            out += close_pad;
            out += ']';
            break;
        }
        case Type::kObject: {
            if (object_.empty()) {
                out += "{}";
                break;
            }
            out += '{';
            out += nl;
            std::size_t i = 0;
            for (const auto& [key, value] : object_) {
                out += pad;
                append_escaped(out, key);
                out += colon;
                value.dump_to(out, indent, depth + 1);
                if (++i < object_.size()) out += ',';
                out += nl;
            }
            out += close_pad;
            out += '}';
            break;
        }
    }
}

std::string Value::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

Value Value::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace hypatia::obs::json
