#include "src/obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <tuple>

#include "src/obs/json.hpp"
#include "src/util/csv.hpp"

namespace hypatia::obs {

namespace {

/// `a` of a fault event carries fault::FaultKind (obs sits below the
/// fault layer, so the numeric convention is mirrored here):
/// 0 = satellite, 1 = ISL, 2 = ground station.
std::string fault_entity(const Event& e) {
    char buf[48];
    switch (e.a) {
        case 0: std::snprintf(buf, sizeof(buf), "sat:%d", e.b); break;
        case 1: std::snprintf(buf, sizeof(buf), "isl:%d-%d", e.b, e.c); break;
        case 2: std::snprintf(buf, sizeof(buf), "gs:%d", e.b); break;
        default: std::snprintf(buf, sizeof(buf), "fault:%d", e.b); break;
    }
    return buf;
}

bool is_fault_transition(EventKind k) {
    return k == EventKind::kFaultDown || k == EventKind::kFaultUp;
}

std::string describe(const Event& e, Cause cause, const std::string& trigger) {
    char buf[160];
    switch (e.kind) {
        case EventKind::kPathChange: {
            char rtt[32] = "unreachable";
            if (std::isfinite(e.value)) {
                std::snprintf(rtt, sizeof(rtt), "rtt %.2f ms", e.value * 1e3);
            }
            if (e.c != e.d) {
                std::snprintf(buf, sizeof(buf),
                              "GSL handover sat %d -> sat %d, %s (cause: %s%s%s)",
                              e.c, e.d, rtt, cause_name(cause),
                              trigger.empty() ? "" : " ", trigger.c_str());
            } else {
                std::snprintf(buf, sizeof(buf),
                              "mid-path change via sat %d, %s (cause: %s%s%s)", e.d,
                              rtt, cause_name(cause), trigger.empty() ? "" : " ",
                              trigger.c_str());
            }
            return buf;
        }
        case EventKind::kEpochAdvance:
            std::snprintf(buf, sizeof(buf), "snapshot %s (%d GSL rows patched)",
                          e.b != 0 ? "refreshed" : "rebuilt", e.a);
            return buf;
        case EventKind::kFaultDown:
            std::snprintf(buf, sizeof(buf), "outage begins");
            return buf;
        case EventKind::kFaultUp:
            std::snprintf(buf, sizeof(buf), "repaired");
            return buf;
        case EventKind::kFlowResolve:
            std::snprintf(buf, sizeof(buf),
                          "max-min re-solve: %d flows, %d rounds, %d unreachable, "
                          "%.3g bps allocated",
                          e.a, e.b, e.c, e.value);
            return buf;
        case EventKind::kFlowSevered:
            std::snprintf(buf, sizeof(buf),
                          "flow %d (gs %d -> gs %d) severed by outage", e.c, e.a,
                          e.b);
            return buf;
        case EventKind::kTcpCwnd:
            std::snprintf(buf, sizeof(buf), "cwnd %.2f segments%s", e.value,
                          e.d != 0 ? " (in recovery)" : "");
            return buf;
        case EventKind::kTcpRto:
            std::snprintf(buf, sizeof(buf), "RTO fired, backoff to %.3f s", e.value);
            return buf;
        case EventKind::kFstateInstall:
            std::snprintf(buf, sizeof(buf), "forwarding state installed (%d entries changed)",
                          e.a);
            return buf;
    }
    return "";
}

}  // namespace

const char* cause_name(Cause cause) {
    switch (cause) {
        case Cause::kNone: return "none";
        case Cause::kHandover: return "handover";
        case Cause::kFault: return "fault";
        case Cause::kRecovery: return "recovery";
    }
    return "none";
}

std::string Timeline::entity_key(const Event& e) {
    char buf[48];
    switch (e.kind) {
        case EventKind::kPathChange:
            std::snprintf(buf, sizeof(buf), "pair:%d->%d", e.a, e.b);
            return buf;
        case EventKind::kFaultDown:
        case EventKind::kFaultUp: return fault_entity(e);
        case EventKind::kFlowSevered:
        case EventKind::kTcpCwnd:
        case EventKind::kTcpRto:
            std::snprintf(buf, sizeof(buf), "flow:%d", e.c);
            return buf;
        case EventKind::kFlowResolve: return "solver";
        case EventKind::kEpochAdvance: return "epoch";
        case EventKind::kFstateInstall: return "fstate";
    }
    return "unknown";
}

Timeline Timeline::build(std::vector<Event> events, TimelineOptions options) {
    std::sort(events.begin(), events.end(), [](const Event& lhs, const Event& rhs) {
        return std::tie(lhs.t, lhs.kind, lhs.a, lhs.b, lhs.c, lhs.d) <
               std::tie(rhs.t, rhs.kind, rhs.a, rhs.b, rhs.c, rhs.d);
    });

    Timeline tl;

    // Attribution window: explicit, else the smallest positive gap
    // between consecutive epoch advances (the step interval of the
    // producing run), else 1 s.
    tl.window_ = options.attribution_window;
    if (tl.window_ <= 0) {
        TimeNs prev = -1;
        TimeNs best = 0;
        for (const Event& e : events) {
            if (e.kind != EventKind::kEpochAdvance) continue;
            if (prev >= 0 && e.t > prev && (best == 0 || e.t - prev < best)) {
                best = e.t - prev;
            }
            prev = e.t;
        }
        tl.window_ = best > 0 ? best : kNsPerSec;
    }

    // Fault transitions, ascending by time (events are sorted already).
    std::vector<const Event*> transitions;
    for (const Event& e : events) {
        if (is_fault_transition(e.kind)) transitions.push_back(&e);
    }

    std::map<std::string, std::vector<TimelineEntry>> grouped;
    for (const Event& e : events) {
        TimelineEntry entry;
        entry.event = e;
        std::string trigger;
        if (e.kind == EventKind::kPathChange) {
            // Transitions in (t - w, t]: first outage wins, else first
            // repair, else constellation motion. A transition touching
            // the old next hop is named in the note either way.
            const Event* down = nullptr;
            const Event* up = nullptr;
            const auto begin = std::lower_bound(
                transitions.begin(), transitions.end(), e.t - tl.window_,
                [](const Event* ev, TimeNs t) { return ev->t <= t; });
            for (auto it = begin; it != transitions.end() && (*it)->t <= e.t; ++it) {
                if ((*it)->kind == EventKind::kFaultDown) {
                    if (down == nullptr || ((*it)->b == e.c && down->b != e.c)) {
                        down = *it;
                    }
                } else if (up == nullptr) {
                    up = *it;
                }
            }
            if (down != nullptr) {
                entry.cause = Cause::kFault;
                trigger = "outage of " + fault_entity(*down);
            } else if (up != nullptr) {
                entry.cause = Cause::kRecovery;
                trigger = "repair of " + fault_entity(*up);
            } else {
                entry.cause = Cause::kHandover;
            }
        }
        entry.note = describe(e, entry.cause, trigger);
        grouped[entity_key(e)].push_back(std::move(entry));
    }

    tl.entities_.reserve(grouped.size());
    for (auto& [entity, entries] : grouped) {
        tl.entities_.push_back(EntityTimeline{entity, std::move(entries)});
    }
    return tl;
}

const EntityTimeline* Timeline::find(const std::string& entity) const {
    const auto it = std::lower_bound(
        entities_.begin(), entities_.end(), entity,
        [](const EntityTimeline& tl, const std::string& key) { return tl.entity < key; });
    if (it == entities_.end() || it->entity != entity) return nullptr;
    return &*it;
}

void Timeline::write_jsonl(std::ostream& out) const {
    for (const auto& entity : entities_) {
        for (const auto& entry : entity.entries) {
            json::Value line = json::Value::object();
            line["entity"] = entity.entity;
            line["t"] = static_cast<std::int64_t>(entry.event.t);
            line["kind"] = event_kind_name(entry.event.kind);
            line["cause"] = cause_name(entry.cause);
            line["a"] = entry.event.a;
            line["b"] = entry.event.b;
            line["c"] = entry.event.c;
            line["d"] = entry.event.d;
            line["value"] = entry.event.value;
            line["note"] = entry.note;
            out << line.dump() << '\n';
        }
    }
}

void Timeline::write_csv(std::ostream& out) const {
    out << "entity,t_ns,kind,cause,a,b,c,d,value,note\n";
    char buf[96];
    for (const auto& entity : entities_) {
        for (const auto& entry : entity.entries) {
            const Event& e = entry.event;
            std::snprintf(buf, sizeof(buf), ",%lld,%s,%s,%d,%d,%d,%d,%.12g,",
                          static_cast<long long>(e.t), event_kind_name(e.kind),
                          cause_name(entry.cause), e.a, e.b, e.c, e.d, e.value);
            out << util::CsvWriter::escape(entity.entity) << buf
                << util::CsvWriter::escape(entry.note) << '\n';
        }
    }
}

}  // namespace hypatia::obs
