// The flight recorder: always-on, per-thread ring buffers of compact
// binary events — the causal record of *why* the simulation did what it
// did (epoch advances, per-pair path changes with old/new next hop,
// fault up/down transitions, flowsim re-solves, TCP cwnd/RTO events).
//
// Design contract (DESIGN.md "Flight recorder and introspection"):
//  * Side-channel only. Recording never feeds back into simulation
//    state, so simulator outputs are byte-identical with the recorder
//    on or off, at any thread count (pinned by
//    tests/test_recorder.cpp).
//  * Cheap enough to stay always-on: the fast path is one relaxed
//    atomic load (enabled?) plus an uncontended per-thread spinlock
//    around a 40-byte slot write. Event sources are epoch-, path- and
//    window-scale, never the per-packet hot loop.
//  * Fixed memory: each recording thread owns one fixed-capacity ring
//    (HYPATIA_RECORDER_CAPACITY events, default 16384); when full, the
//    oldest events are overwritten and counted in dropped().
//  * Drained on demand (drain() / drain_to_jsonl()) or on fatal signal
//    to HYPATIA_RECORDER_FILE (default flight_recorder.jsonl) when
//    that variable is set — the post-mortem "what was the simulator
//    doing" record.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/units.hpp"

namespace hypatia::obs {

/// Event vocabulary. The payload fields a..d and value are documented
/// per kind; every kind also carries the event time in ns (sim or
/// analysis-window time of the emitting layer).
enum class EventKind : std::uint8_t {
    /// Snapshot brought to a new epoch. a = GSL rows patched (refresh
    /// mode) or -1 (rebuild), b = 1 refresh / 0 rebuild.
    kEpochAdvance = 0,
    /// A source-destination pair's path changed. a = src entity id,
    /// b = dst entity id, c = old first-hop satellite (-1 unknown /
    /// previously unreachable), d = new first-hop satellite (-1 now
    /// unreachable), value = new RTT in seconds (+inf if unreachable).
    kPathChange = 1,
    /// Fault transition: entity went down. a = fault::FaultKind,
    /// b / c = entity ids (c = ISL peer or -1).
    kFaultDown = 2,
    /// Fault transition: entity repaired. Fields as kFaultDown.
    kFaultUp = 3,
    /// Flowsim max-min re-solve. a = flows in the problem, b = solver
    /// rounds, c = unreachable flows, value = sum allocated rate (bps).
    kFlowResolve = 4,
    /// A previously-routed flow lost its path to an outage.
    /// a = src GS, b = dst GS, c = flow id.
    kFlowSevered = 5,
    /// TCP congestion-window change. a = src node, b = dst node,
    /// c = flow id, d = 1 when in recovery, value = cwnd (segments).
    kTcpCwnd = 6,
    /// TCP retransmission timeout fired. a = src node, b = dst node,
    /// c = flow id, value = backed-off RTO in seconds.
    kTcpRto = 7,
    /// Packet-simulator forwarding-state install. a = entries changed.
    kFstateInstall = 8,
};
inline constexpr std::size_t kNumEventKinds = 9;

/// "epoch", "path_change", ... — stable names used by the JSONL drain
/// and the timeline reconstructor.
const char* event_kind_name(EventKind kind);

/// One recorded event; 40 bytes, trivially copyable.
struct Event {
    TimeNs t = 0;
    std::int32_t a = -1;
    std::int32_t b = -1;
    std::int32_t c = -1;
    std::int32_t d = -1;
    double value = 0.0;
    EventKind kind = EventKind::kEpochAdvance;
};

class FlightRecorder {
  public:
    static FlightRecorder& instance();

    /// The hot-path guard: one relaxed atomic load.
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    /// Capacity (events) of rings created after this call; existing
    /// rings keep their size. Values are clamped to [64, 1<<22].
    void set_capacity(std::size_t events);
    std::size_t capacity() const { return capacity_; }

    /// Appends to the calling thread's ring (registered on first use).
    /// No-op when disabled.
    void record(const Event& e) {
        if (!enabled()) return;
        record_slow(e);
    }
    void record(EventKind kind, TimeNs t, std::int32_t a = -1, std::int32_t b = -1,
                std::int32_t c = -1, std::int32_t d = -1, double value = 0.0) {
        if (!enabled()) return;
        Event e;
        e.t = t;
        e.a = a;
        e.b = b;
        e.c = c;
        e.d = d;
        e.value = value;
        e.kind = kind;
        record_slow(e);
    }

    /// Merged view of every thread's ring, sorted by (t, kind, a, b, c,
    /// d, value) so the result is deterministic at any thread count.
    /// snapshot() leaves the rings intact (live introspection); drain()
    /// also clears them.
    std::vector<Event> snapshot() const;
    std::vector<Event> drain();

    /// Writes drain() as one JSON object per line:
    ///   {"t":..., "kind":"path_change", "a":..., ..., "value":...}
    void drain_to_jsonl(const std::string& path);

    /// Events overwritten because a ring was full.
    std::uint64_t dropped() const;
    /// Events currently buffered across all rings.
    std::size_t buffered() const;

    /// Clears every ring and the dropped counter, and re-sizes existing
    /// rings to the current capacity (tests, multi-run binaries). Ring
    /// registrations stay valid.
    void reset();

    /// Reads HYPATIA_RECORDER (off/0/false disables; anything else or
    /// unset leaves the recorder on), HYPATIA_RECORDER_CAPACITY and
    /// HYPATIA_RECORDER_FILE. Setting HYPATIA_RECORDER_FILE (empty
    /// value = flight_recorder.jsonl) arms the fatal-signal drain
    /// (SIGSEGV/SIGBUS/SIGFPE/SIGABRT) to that path.
    void configure_from_env();

    const std::string& crash_dump_path() const { return crash_path_; }

    /// Best-effort dump for the fatal-signal path: no locks, no
    /// allocation; writes whatever the rings currently hold to `fd`.
    void dump_unlocked(int fd) const;

    /// Per-thread ring storage; opaque outside recorder.cpp.
    struct Ring;

  private:
    FlightRecorder();
    void record_slow(const Event& e);
    Ring& local_ring();
    void install_crash_handler(const std::string& path);

    std::atomic<bool> enabled_{true};
    std::size_t capacity_ = 16384;
    std::string crash_path_;

    mutable std::mutex mu_;  // guards rings_ registration and drains
    std::vector<std::unique_ptr<Ring>> rings_;
};

inline FlightRecorder& recorder() { return FlightRecorder::instance(); }

/// Chains one extra callback ahead of the recorder dump inside the
/// shared SIGSEGV/SIGBUS/SIGFPE/SIGABRT handler — the checkpoint layer
/// hangs its best-effort image write here, so on a fatal signal the
/// sequence is: checkpoint image, recorder dump, default disposition
/// re-raise. The hook must be async-signal-safe.
void set_fatal_signal_hook(void (*hook)());

/// Installs the shared fatal-signal handler (idempotent, any caller).
/// The recorder's JSONL dump within it only fires when
/// HYPATIA_RECORDER_FILE armed a dump path; the hook above fires
/// regardless.
void install_fatal_signal_handlers();

}  // namespace hypatia::obs
