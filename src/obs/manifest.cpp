#include "src/obs/manifest.hpp"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hypatia::obs {

namespace {

std::string format_number(double value) {
    char buf[32];
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        value < 9.0e15 && value > -9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.12g", value);
    }
    return buf;
}

std::string run_git_describe_uncached() {
    FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
    if (pipe == nullptr) return "unknown";
    char buf[128] = {0};
    std::string out;
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) out = buf;
    ::pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
    return out.empty() ? "unknown" : out;
}

const std::string& run_git_describe() {
    // The working tree cannot change mid-process in any way the manifest
    // should care about, so fork+exec exactly once per process — a
    // stamp_environment() in a hot loop (every /manifest request, every
    // bench repetition) must not spawn a subprocess each time.
    static const std::string cached = run_git_describe_uncached();
    return cached;
}

double seconds(std::uint64_t ns) { return static_cast<double>(ns) / 1e9; }

}  // namespace

void RunManifest::stamp_environment() {
    const std::time_t now = std::time(nullptr);
    char buf[32];
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    created_utc_ = buf;
    git_describe_ = run_git_describe();
}

void RunManifest::set_param(const std::string& key, double value) {
    params_[key] = format_number(value);
}

void RunManifest::capture(const Profiler& profiler, const MetricsRegistry& metrics) {
    phases_.clear();
    for (const auto& [name, stats] : profiler.snapshot()) {
        phases_[name] = Phase{stats.calls, seconds(stats.total_ns),
                              seconds(stats.self_ns)};
    }
    metrics_.clear();
    for (const auto& [name, c] : metrics.counters()) {
        metrics_[name] = static_cast<double>(c.value());
    }
    for (const auto& [name, g] : metrics.gauges()) metrics_[name] = g.value();
    for (const auto& [name, h] : metrics.histograms()) {
        metrics_[name + ".count"] = static_cast<double>(h.count());
        metrics_[name + ".mean"] = h.mean();
        metrics_[name + ".p50"] = static_cast<double>(h.percentile(50));
        metrics_[name + ".p99"] = static_cast<double>(h.percentile(99));
        metrics_[name + ".max"] = static_cast<double>(h.max());
    }
}

json::Value RunManifest::to_json() const {
    json::Value root = json::Value::object();
    root["name"] = name_;
    root["created_utc"] = created_utc_;
    root["git_describe"] = git_describe_;

    json::Value params = json::Value::object();
    for (const auto& [key, value] : params_) params[key] = value;
    root["params"] = std::move(params);

    json::Value phases = json::Value::object();
    for (const auto& [name, phase] : phases_) {
        json::Value p = json::Value::object();
        p["calls"] = static_cast<double>(phase.calls);
        p["total_s"] = phase.total_s;
        p["self_s"] = phase.self_s;
        phases[name] = std::move(p);
    }
    root["phases"] = std::move(phases);

    // The canonical three-way wall-clock rollup: SGP4 propagation,
    // routing recompute, event loop. Self time sums without double
    // counting (the scopes nest); total time is inclusive. Recomputed
    // from `phases` on every serialization, so parse() round-trips.
    json::Value breakdown = json::Value::object();
    const auto rollup = [&](const char* key, const char* prefix) {
        double total_s = 0.0;
        double self_s = 0.0;
        std::uint64_t calls = 0;
        for (const auto& [name, phase] : phases_) {
            if (name.compare(0, std::string::traits_type::length(prefix), prefix) != 0)
                continue;
            total_s += phase.total_s;
            self_s += phase.self_s;
            calls += phase.calls;
        }
        json::Value p = json::Value::object();
        p["calls"] = static_cast<double>(calls);
        p["total_s"] = total_s;
        p["self_s"] = self_s;
        breakdown[key] = std::move(p);
    };
    rollup("propagation", "propagation.");
    rollup("routing", "routing.");
    rollup("event_loop", "sim.event_loop");
    root["phase_breakdown"] = std::move(breakdown);

    json::Value metrics = json::Value::object();
    for (const auto& [name, value] : metrics_) metrics[name] = value;
    root["metrics"] = std::move(metrics);
    return root;
}

void RunManifest::write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("manifest: cannot open " + path);
    out << dump() << '\n';
}

RunManifest RunManifest::parse(const std::string& text) {
    const json::Value root = json::Value::parse(text);
    RunManifest m;
    m.name_ = root.at("name").as_string();
    m.created_utc_ = root.at("created_utc").as_string();
    m.git_describe_ = root.at("git_describe").as_string();
    for (const auto& [key, value] : root.at("params").as_object()) {
        m.params_[key] = value.as_string();
    }
    for (const auto& [name, p] : root.at("phases").as_object()) {
        m.phases_[name] = Phase{
            static_cast<std::uint64_t>(p.at("calls").as_number()),
            p.at("total_s").as_number(), p.at("self_s").as_number()};
    }
    for (const auto& [name, value] : root.at("metrics").as_object()) {
        m.metrics_[name] = value.as_number();
    }
    return m;
}

RunManifest RunManifest::read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("manifest: cannot open " + path);
    std::stringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

}  // namespace hypatia::obs
