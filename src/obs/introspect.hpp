// Live introspection endpoint: a tiny blocking TCP text server that
// answers questions about the *running* process — the foundation of the
// ROADMAP's simulator-as-a-service daemon mode. One accept thread, one
// request per connection, plain HTTP/1.0 responses:
//
//   /metrics            Prometheus text format (all registered metrics)
//   /manifest           the live RunManifest as JSON (params omitted)
//   /timeline           flight-recorder timeline, JSONL; filter with
//                       ?entity=pair:12->87 (URL-encoded), ?format=csv
//   /healthz            "ok"
//
// Subsystems can extend the route table at runtime with
// register_handler() — e.g. emu::RealtimePacer serves the live
// emulation schedule under /schedule for the duration of a paced run.
//
// Enabled by HYPATIA_OBS_PORT=<port> (0 picks an ephemeral port,
// printed to stderr). The server binds 127.0.0.1 only. Request handling
// reads shared observability state through the same thread-safe
// accessors the workers use, so it is safe while a bench is running.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace hypatia::obs {

/// Renders every registered metric in Prometheus text exposition
/// format (metric names are prefixed "hypatia_" and sanitized;
/// histograms render as summaries with p50/p90/p99 quantiles).
std::string prometheus_metrics();

/// Extracts the (URL-decoded) value of `key` from a query string like
/// "src=Paris&format=csv"; "" when absent. Shared by the built-in
/// routes and dynamically registered handlers.
std::string query_param(const std::string& query, const std::string& key);

class IntrospectionServer {
  public:
    IntrospectionServer() = default;
    ~IntrospectionServer();
    IntrospectionServer(const IntrospectionServer&) = delete;
    IntrospectionServer& operator=(const IntrospectionServer&) = delete;

    /// Binds 127.0.0.1:`port` (0 = ephemeral), starts the accept thread
    /// and returns the bound port. Throws std::runtime_error when the
    /// port cannot be bound.
    std::uint16_t start(std::uint16_t port);
    void stop();
    bool running() const { return listen_fd_ >= 0; }
    std::uint16_t port() const { return port_; }

    struct Response {
        int status = 200;
        std::string content_type = "text/plain; charset=utf-8";
        std::string body;
    };
    /// Routes one request target ("/metrics", "/timeline?entity=...")
    /// to its response. Exposed for tests; the socket loop calls this.
    static Response handle(const std::string& target);

    /// Dynamic routes, consulted after the built-ins. `path` must start
    /// with '/'; the handler receives the raw query string (use
    /// query_param()). Registering an existing path replaces it. The
    /// handler must stay callable until unregister_handler(path)
    /// returns — RAII-scope it to the object it reads from.
    using Handler = std::function<Response(const std::string& query)>;
    static void register_handler(const std::string& path, Handler handler);
    static void unregister_handler(const std::string& path);

    /// Starts the process-global server when HYPATIA_OBS_PORT is set
    /// (idempotent; a malformed value warns once and is ignored).
    static void maybe_start_from_env();
    static IntrospectionServer& global();

  private:
    void serve();

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

}  // namespace hypatia::obs
