// Minimal JSON value model with a parser and serializer — the document
// format of the observability layer (JSONL trace records, run
// manifests). Implements the subset those need: objects, arrays,
// strings with escapes, numbers (stored as double), booleans and null.
// Object keys are kept sorted, so serialization is deterministic and
// manifests diff cleanly across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hypatia::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() = default;
    Value(bool b) : type_(Type::kBool), bool_(b) {}
    Value(double d) : type_(Type::kNumber), number_(d) {}
    Value(int i) : Value(static_cast<double>(i)) {}
    Value(std::int64_t i) : Value(static_cast<double>(i)) {}
    Value(std::uint64_t u) : Value(static_cast<double>(u)) {}
    Value(const char* s) : type_(Type::kString), string_(s) {}
    Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
    Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
    Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

    static Value object() { return Value(Object{}); }
    static Value array() { return Value(Array{}); }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /// Typed accessors; throw std::logic_error on a type mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;

    /// Object access. `operator[]` inserts a null member when absent (and
    /// turns a null value into an object); `at` throws when absent.
    Value& operator[](const std::string& key);
    const Value& at(const std::string& key) const;
    bool contains(const std::string& key) const;

    /// Array append (turns a null value into an array).
    void push_back(Value v);

    /// Serializes the value. `indent` < 0 gives one compact line;
    /// otherwise members are pretty-printed with `indent` spaces per
    /// nesting level. Non-finite numbers (NaN, +/-inf) serialize as
    /// null — JSON has no spelling for them and a reader must not see a
    /// token its own parser rejects. Control characters in strings are
    /// \u-escaped.
    std::string dump(int indent = -1) const;

    /// Parses one JSON document; throws std::runtime_error with the
    /// offending byte offset on malformed input, including container
    /// nesting beyond 256 levels (bounded recursion, never a stack
    /// overflow). \u escapes decode surrogate pairs; a lone surrogate
    /// half decodes to U+FFFD.
    static Value parse(const std::string& text);

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

}  // namespace hypatia::obs::json
