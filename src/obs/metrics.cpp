#include "src/obs/metrics.hpp"

#include <stdexcept>

namespace hypatia::obs {

void Histogram::record(std::uint64_t v) {
    const std::size_t index = bucket_index(v);
    if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
    ++buckets_[index];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
}

std::uint64_t Histogram::percentile(double p) const {
    if (count_ == 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    // Rank of the percentile sample (1-based, nearest-rank definition).
    // The cumulative count first reaches the rank at a non-empty bucket.
    auto target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_) + 0.5);
    if (target == 0) target = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target) return bucket_lower_bound(i);
    }
    return max_;
}

void Histogram::reset() {
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

void MetricsRegistry::check_kind(const std::string& name, const char* kind) const {
    const bool is_counter = counters_.count(name) > 0;
    const bool is_gauge = gauges_.count(name) > 0;
    const bool is_histogram = histograms_.count(name) > 0;
    const bool wanted_counter = kind[0] == 'c';
    const bool wanted_gauge = kind[0] == 'g';
    const bool wanted_histogram = kind[0] == 'h';
    if ((is_counter && !wanted_counter) || (is_gauge && !wanted_gauge) ||
        (is_histogram && !wanted_histogram)) {
        throw std::invalid_argument("metrics: '" + name +
                                    "' already registered with a different kind");
    }
}

Counter& MetricsRegistry::counter(const std::string& name) {
    check_kind(name, "counter");
    return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    check_kind(name, "gauge");
    return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    check_kind(name, "histogram");
    return histograms_[name];
}

void MetricsRegistry::reset_values() {
    for (auto& [name, c] : counters_) c.reset();
    for (auto& [name, g] : gauges_) g.reset();
    for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace hypatia::obs
