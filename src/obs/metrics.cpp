#include "src/obs/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace hypatia::obs {

void Histogram::record(std::uint64_t v) {
    const std::size_t index = bucket_index(v);
    lock();
    if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
    ++buckets_[index];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
    unlock();
}

std::uint64_t Histogram::count() const {
    lock();
    const std::uint64_t c = count_;
    unlock();
    return c;
}

std::uint64_t Histogram::sum() const {
    lock();
    const std::uint64_t s = sum_;
    unlock();
    return s;
}

std::uint64_t Histogram::min() const {
    lock();
    const std::uint64_t m = count_ == 0 ? 0 : min_;
    unlock();
    return m;
}

std::uint64_t Histogram::max() const {
    lock();
    const std::uint64_t m = max_;
    unlock();
    return m;
}

double Histogram::mean() const {
    lock();
    const double m = count_ == 0 ? 0.0
                                 : static_cast<double>(sum_) /
                                       static_cast<double>(count_);
    unlock();
    return m;
}

std::uint64_t Histogram::percentile(double p) const {
    lock();
    if (count_ == 0) {
        unlock();
        return 0;
    }
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    // Rank of the percentile sample (1-based, nearest-rank definition:
    // ceil(p/100 * N), clamped to [1, N] — round-half-up here was off by
    // one whenever p*N/100 had a fraction below one half, e.g. p33 of 10
    // samples picked rank 3 instead of 4). The cumulative count first
    // reaches the rank at a non-empty bucket.
    auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (target == 0) target = 1;
    if (target > count_) target = count_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target) {
            unlock();
            return bucket_lower_bound(i);
        }
    }
    const std::uint64_t m = max_;
    unlock();
    return m;
}

Histogram::State Histogram::state() const {
    State s;
    lock();
    s.buckets = buckets_;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    unlock();
    return s;
}

void Histogram::restore(const State& s) {
    lock();
    buckets_ = s.buckets;
    count_ = s.count;
    sum_ = s.sum;
    min_ = s.min;
    max_ = s.max;
    unlock();
}

void Histogram::reset() {
    lock();
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
    unlock();
}

void MetricsRegistry::check_kind(const std::string& name, const char* kind) const {
    const bool is_counter = counters_.count(name) > 0;
    const bool is_gauge = gauges_.count(name) > 0;
    const bool is_histogram = histograms_.count(name) > 0;
    const bool wanted_counter = kind[0] == 'c';
    const bool wanted_gauge = kind[0] == 'g';
    const bool wanted_histogram = kind[0] == 'h';
    if ((is_counter && !wanted_counter) || (is_gauge && !wanted_gauge) ||
        (is_histogram && !wanted_histogram)) {
        throw std::invalid_argument("metrics: '" + name +
                                    "' already registered with a different kind");
    }
}

Counter& MetricsRegistry::counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    check_kind(name, "counter");
    return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    check_kind(name, "gauge");
    return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    check_kind(name, "histogram");
    return histograms_[name];
}

std::size_t MetricsRegistry::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::reset_values() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c.reset();
    for (auto& [name, g] : gauges_) g.reset();
    for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace hypatia::obs
