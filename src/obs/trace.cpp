#include "src/obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace hypatia::obs {

const char* trace_category_name(TraceCategory c) {
    switch (c) {
        case TraceCategory::kPacket: return "packet";
        case TraceCategory::kTcp: return "tcp";
        case TraceCategory::kRouting: return "routing";
        case TraceCategory::kSim: return "sim";
        case TraceCategory::kFlow: return "flow";
        case TraceCategory::kFault: return "fault";
    }
    return "unknown";
}

std::optional<TraceCategory> trace_category_from_name(const std::string& name) {
    if (name == "packet") return TraceCategory::kPacket;
    if (name == "tcp") return TraceCategory::kTcp;
    if (name == "routing") return TraceCategory::kRouting;
    if (name == "sim") return TraceCategory::kSim;
    if (name == "flow") return TraceCategory::kFlow;
    if (name == "fault") return TraceCategory::kFault;
    return std::nullopt;
}

JsonlTraceSink::JsonlTraceSink(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("trace: cannot open " + path);
}

void JsonlTraceSink::write(const TraceRecord& r) {
    // Hand-rolled line (one snprintf) — building a json::Value per packet
    // record would dominate the cost of tracing.
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"t\":%lld,\"cat\":\"%s\",\"event\":\"%s\",\"node\":%d,"
                  "\"peer\":%d,\"flow\":%llu,\"value\":%lld,\"fvalue\":%.9g}",
                  static_cast<long long>(r.t), trace_category_name(r.category),
                  r.event, r.node, r.peer, static_cast<unsigned long long>(r.flow_id),
                  static_cast<long long>(r.value), r.fvalue);
    out_ << buf << '\n';
}

CsvTraceSink::CsvTraceSink(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("trace: cannot open " + path);
    out_ << "t_ns,category,event,node,peer,flow_id,value,fvalue\n";
}

void CsvTraceSink::write(const TraceRecord& r) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%lld,%s,%s,%d,%d,%llu,%lld,%.9g",
                  static_cast<long long>(r.t), trace_category_name(r.category),
                  r.event, r.node, r.peer, static_cast<unsigned long long>(r.flow_id),
                  static_cast<long long>(r.value), r.fvalue);
    out_ << buf << '\n';
}

void Tracer::emit(const TraceRecord& record) {
    if (!enabled(record.category)) return;
    std::lock_guard<std::mutex> lock(mu_);
    const auto c = static_cast<std::size_t>(record.category);
    if (sample_every_[c] > 1 && (sample_seen_[c]++ % sample_every_[c]) != 0) return;
    sink_->write(record);
    ++written_;
}

void Tracer::configure_from_env() {
    const char* spec = std::getenv("HYPATIA_TRACE");
    if (spec == nullptr || spec[0] == '\0') return;

    const char* file = std::getenv("HYPATIA_TRACE_FILE");
    const std::string path = file != nullptr && file[0] != '\0' ? file : "trace.jsonl";
    // An unusable path disables tracing with a warning rather than
    // aborting the run — env-driven config must not crash the simulation.
    try {
        if (path.size() > 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
            set_sink(std::make_unique<CsvTraceSink>(path));
        } else {
            set_sink(std::make_unique<JsonlTraceSink>(path));
        }
    } catch (const std::runtime_error& e) {
        std::fprintf(stderr, "[hypatia] HYPATIA_TRACE disabled: %s\n", e.what());
        return;
    }

    std::stringstream ss(spec);
    std::string token;
    while (std::getline(ss, token, ',')) {
        if (token == "all") {
            enable_all();
        } else if (const auto cat = trace_category_from_name(token)) {
            enable(*cat);
        } else {
            std::fprintf(stderr, "[hypatia] HYPATIA_TRACE: unknown category '%s'\n",
                         token.c_str());
        }
    }

    if (const char* sample = std::getenv("HYPATIA_TRACE_SAMPLE")) {
        const long n = std::strtol(sample, nullptr, 10);
        if (n > 1) {
            for (std::size_t c = 0; c < kNumTraceCategories; ++c) {
                set_sample_every(static_cast<TraceCategory>(c),
                                 static_cast<std::uint32_t>(n));
            }
        }
    }
}

void Tracer::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    mask_ = 0;
    sink_.reset();
    written_ = 0;
    for (std::size_t c = 0; c < kNumTraceCategories; ++c) {
        sample_every_[c] = 1;
        sample_seen_[c] = 0;
    }
}

}  // namespace hypatia::obs
