// The process-wide observability context: one metrics registry, one
// tracer, one profiler. Components reach it through the obs::metrics()
// / obs::tracer() / obs::profiler() accessors, look their instruments
// up once at construction and keep the pointers (lookups are get-or-
// create, so any number of simulators in one process share the same
// named metrics — values accumulate per process).
//
// The core metric set is registered eagerly at first use, so every
// binary — including ones that never build a packet network — reports
// the same schema in its run manifest. The tracer is configured from
// the environment on first use (HYPATIA_TRACE / HYPATIA_TRACE_FILE /
// HYPATIA_TRACE_SAMPLE); with no environment set, every category stays
// disabled and tracing costs one bitmask test per would-be record.
#pragma once

#include <functional>

#include "src/obs/metrics.hpp"
#include "src/obs/profile.hpp"
#include "src/obs/trace.hpp"

namespace hypatia::obs {

/// Ordered process-shutdown sequence (DESIGN.md §13): the introspection
/// server stops first (no thread reads shared state mid-teardown), then
/// the final checkpoint flushes, then the flight recorder drains its
/// post-mortem record. Lower priorities run earlier.
inline constexpr int kShutdownStopIntrospection = 10;
inline constexpr int kShutdownFinalCheckpoint = 20;
inline constexpr int kShutdownRecorderDrain = 30;

/// Registers `fn` to run at process exit (or at an explicit
/// run_shutdown_hooks() call), ordered by ascending priority. The first
/// registration arms a single atexit handler; every singleton the hooks
/// touch (Observability, FlightRecorder, the global IntrospectionServer
/// and checkpoint Manager) is intentionally leaked, so the sequence is
/// use-after-free-safe no matter when static destruction interleaves.
void register_shutdown_hook(int priority, std::function<void()> fn);

/// Runs and clears the registered hooks (idempotent; exceptions are
/// swallowed so one hook cannot starve the rest). Called automatically
/// via atexit; exposed for tests and for orderly daemon shutdown.
void run_shutdown_hooks();

class Observability {
  public:
    static Observability& instance();

    MetricsRegistry& metrics() { return metrics_; }
    Tracer& tracer() { return tracer_; }
    Profiler& profiler() { return profiler_; }

    /// Zeroes metric values, clears profiler phases and detaches the
    /// trace sink. Registered metric names (and outstanding pointers)
    /// stay valid. For tests and multi-run binaries.
    void reset();

  private:
    Observability();
    void register_core_metrics();

    MetricsRegistry metrics_;
    Tracer tracer_;
    Profiler profiler_;
};

inline MetricsRegistry& metrics() { return Observability::instance().metrics(); }
inline Tracer& tracer() { return Observability::instance().tracer(); }
inline Profiler& profiler() { return Observability::instance().profiler(); }

}  // namespace hypatia::obs
