#include "src/obs/introspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "src/obs/manifest.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/timeline.hpp"

namespace hypatia::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry uses
/// dotted names, so "net.tx_packets" becomes "hypatia_net_tx_packets".
std::string prom_name(const std::string& name) {
    std::string out = "hypatia_";
    for (const char c : name) {
        out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')
                   ? c
                   : '_';
    }
    return out;
}

void append_value(std::string& out, double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    out += buf;
}

std::string url_decode(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        if (in[i] == '%' && i + 2 < in.size()) {
            const auto hex = [](char c) -> int {
                if (c >= '0' && c <= '9') return c - '0';
                if (c >= 'a' && c <= 'f') return c - 'a' + 10;
                if (c >= 'A' && c <= 'F') return c - 'A' + 10;
                return -1;
            };
            const int hi = hex(in[i + 1]);
            const int lo = hex(in[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
                continue;
            }
        }
        out += in[i] == '+' ? ' ' : in[i];
    }
    return out;
}

void send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                                 MSG_NOSIGNAL
#else
                                 0
#endif
        );
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
    }
}

/// Dynamic route table (register_handler). Handlers run outside the
/// lock so they may re-enter handle() or (un)register other paths.
/// Both statics are intentionally leaked: the global server's serve
/// thread may still route requests while function-local statics are
/// being destroyed at process exit.
std::mutex& handlers_mutex() {
    static std::mutex* m = new std::mutex();
    return *m;
}

std::map<std::string, IntrospectionServer::Handler>& handlers() {
    static auto* map = new std::map<std::string, IntrospectionServer::Handler>();
    return *map;
}

/// Set by global(); start() uses it to arm the ordered shutdown stop
/// for the process-global server only (stack-scoped test servers stop
/// in their destructor — a shutdown hook would dangle).
IntrospectionServer* g_global_server = nullptr;

}  // namespace

std::string query_param(const std::string& query, const std::string& key) {
    std::size_t pos = 0;
    while (pos < query.size()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos) amp = query.size();
        const std::string part = query.substr(pos, amp - pos);
        const std::size_t eq = part.find('=');
        if (eq != std::string::npos && part.substr(0, eq) == key) {
            return url_decode(part.substr(eq + 1));
        }
        pos = amp + 1;
    }
    return "";
}

std::string prometheus_metrics() {
    const MetricsRegistry& registry = metrics();
    std::string out;
    out.reserve(8192);
    for (const auto& [name, counter] : registry.counters()) {
        const std::string p = prom_name(name);
        out += "# TYPE " + p + " counter\n" + p + " ";
        append_value(out, static_cast<double>(counter.value()));
        out += '\n';
    }
    for (const auto& [name, gauge] : registry.gauges()) {
        const std::string p = prom_name(name);
        out += "# TYPE " + p + " gauge\n" + p + " ";
        append_value(out, gauge.value());
        out += '\n';
    }
    for (const auto& [name, histogram] : registry.histograms()) {
        const std::string p = prom_name(name);
        out += "# TYPE " + p + " summary\n";
        for (const auto& [q, pct] :
             {std::pair<const char*, double>{"0.5", 50.0}, {"0.9", 90.0},
              {"0.99", 99.0}}) {
            out += p + "{quantile=\"" + q + "\"} ";
            append_value(out, static_cast<double>(histogram.percentile(pct)));
            out += '\n';
        }
        out += p + "_sum ";
        append_value(out, static_cast<double>(histogram.sum()));
        out += '\n';
        out += p + "_count ";
        append_value(out, static_cast<double>(histogram.count()));
        out += '\n';
    }
    return out;
}

IntrospectionServer::Response IntrospectionServer::handle(const std::string& target) {
    const std::size_t qmark = target.find('?');
    const std::string path = target.substr(0, qmark);
    const std::string query =
        qmark == std::string::npos ? "" : target.substr(qmark + 1);

    Response resp;
    if (path == "/healthz") {
        resp.body = "ok\n";
        return resp;
    }
    if (path == "/metrics") {
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = prometheus_metrics();
        return resp;
    }
    if (path == "/manifest") {
        RunManifest manifest;
        manifest.set_name("live");
        manifest.stamp_environment();
        manifest.capture(profiler(), metrics());
        resp.content_type = "application/json";
        resp.body = manifest.dump() + "\n";
        return resp;
    }
    if (path == "/timeline") {
        const std::string entity = query_param(query, "entity");
        const std::string format = query_param(query, "format");
        const Timeline timeline = Timeline::build(recorder().snapshot());
        std::ostringstream out;
        if (entity.empty()) {
            if (format == "csv") timeline.write_csv(out);
            else timeline.write_jsonl(out);
        } else {
            const EntityTimeline* et = timeline.find(entity);
            if (et == nullptr) {
                resp.status = 404;
                resp.body = "no timeline for entity '" + entity + "'\n";
                return resp;
            }
            std::vector<Event> events;
            for (const auto& entry : et->entries) events.push_back(entry.event);
            const Timeline filtered =
                Timeline::build(std::move(events),
                                TimelineOptions{timeline.attribution_window()});
            if (format == "csv") filtered.write_csv(out);
            else filtered.write_jsonl(out);
        }
        resp.content_type =
            format == "csv" ? "text/csv; charset=utf-8" : "application/jsonl";
        resp.body = out.str();
        return resp;
    }
    // Dynamically registered routes (e.g. emu's /schedule during a
    // paced run). Copy the handler out so it runs outside the lock.
    Handler dynamic;
    std::string registered;
    {
        std::lock_guard<std::mutex> lock(handlers_mutex());
        const auto it = handlers().find(path);
        if (it != handlers().end()) dynamic = it->second;
        for (const auto& [p, h] : handlers()) registered += " " + p;
    }
    if (dynamic) return dynamic(query);

    resp.status = 404;
    resp.body =
        "not found; try /metrics /manifest /timeline /healthz" + registered + "\n";
    return resp;
}

void IntrospectionServer::register_handler(const std::string& path,
                                           Handler handler) {
    std::lock_guard<std::mutex> lock(handlers_mutex());
    handlers()[path] = std::move(handler);
}

void IntrospectionServer::unregister_handler(const std::string& path) {
    std::lock_guard<std::mutex> lock(handlers_mutex());
    handlers().erase(path);
}

std::uint16_t IntrospectionServer::start(std::uint16_t port) {
    if (running()) return port_;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("introspect: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        ::close(fd);
        throw std::runtime_error("introspect: cannot bind 127.0.0.1:" +
                                 std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    listen_fd_ = fd;
    stop_.store(false);
    thread_ = std::thread([this] { serve(); });
    if (this == g_global_server) {
        // Defined shutdown order (DESIGN.md §13): stop serving before
        // the final checkpoint flushes and the recorder drains.
        static bool hook_registered = false;
        if (!hook_registered) {
            hook_registered = true;
            register_shutdown_hook(kShutdownStopIntrospection,
                                   [] { global().stop(); });
        }
    }
    return port_;
}

void IntrospectionServer::serve() {
    // Cap on buffered request bytes before the end of the request line:
    // a client streaming an endless first line gets a 400 instead of
    // growing the buffer, and a slow one is bounded by SO_RCVTIMEO.
    constexpr std::size_t kMaxRequestBytes = 8192;
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
        int client = -1;
        do {
            client = ::accept(listen_fd_, nullptr, nullptr);
        } while (client < 0 && errno == EINTR &&
                 !stop_.load(std::memory_order_relaxed));
        if (client < 0) continue;

        timeval timeout{2, 0};
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
        // The request line may arrive split across any number of
        // packets: loop recv until a line terminator shows up, the
        // byte cap trips, the receive window times out, or the peer
        // closes. EINTR retries the read.
        std::string request;
        bool have_line = false;
        bool oversized = false;
        bool timed_out = false;
        char buf[1024];
        while (!have_line && !oversized) {
            const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
            if (n < 0) {
                if (errno == EINTR) continue;
                timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
                break;
            }
            if (n == 0) break;  // peer closed
            request.append(buf, static_cast<std::size_t>(n));
            have_line = request.find('\n') != std::string::npos;
            if (!have_line && request.size() >= kMaxRequestBytes) oversized = true;
        }
        if (request.empty() && !timed_out) {
            // Connected and closed without a byte — nothing to answer.
            ::close(client);
            continue;
        }
        // "GET /path?query HTTP/1.x" — anything else is a 400.
        Response resp;
        char method[8] = {0};
        char target[2048] = {0};
        if (have_line &&
            std::sscanf(request.c_str(), "%7s %2047s", method, target) == 2 &&
            std::strcmp(method, "GET") == 0) {
            resp = handle(target);
        } else {
            resp.status = 400;
            resp.body = oversized   ? "request line too long\n"
                        : timed_out ? "request timed out\n"
                                    : "bad request\n";
        }
        const char* reason = resp.status == 200   ? "OK"
                             : resp.status == 404 ? "Not Found"
                                                  : "Bad Request";
        std::string head = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                           reason + "\r\nContent-Type: " + resp.content_type +
                           "\r\nContent-Length: " +
                           std::to_string(resp.body.size()) +
                           "\r\nConnection: close\r\n\r\n";
        send_all(client, head);
        send_all(client, resp.body);
        ::close(client);
    }
}

void IntrospectionServer::stop() {
    if (!running()) return;
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    port_ = 0;
}

IntrospectionServer::~IntrospectionServer() { stop(); }

IntrospectionServer& IntrospectionServer::global() {
    // Intentionally leaked: the serve thread must never race static
    // destruction of the object it runs on. The ordered shutdown hook
    // registered in start() joins the thread at exit; if the process
    // skips the hooks, exit() tears the thread down with everything it
    // reads (metrics, recorder, handlers) likewise leaked and valid.
    static IntrospectionServer* server = new IntrospectionServer();
    g_global_server = server;
    return *server;
}

void IntrospectionServer::maybe_start_from_env() {
    static bool attempted = false;
    if (attempted) return;
    attempted = true;
    const char* env = std::getenv("HYPATIA_OBS_PORT");
    if (env == nullptr || *env == '\0') return;
    char* end = nullptr;
    const long port = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr, "hypatia: ignoring malformed HYPATIA_OBS_PORT=%s\n",
                     env);
        return;
    }
    try {
        const std::uint16_t bound =
            global().start(static_cast<std::uint16_t>(port));
        std::fprintf(stderr, "hypatia: introspection endpoint on 127.0.0.1:%u\n",
                     bound);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "hypatia: introspection endpoint failed: %s\n",
                     e.what());
    }
}

}  // namespace hypatia::obs
