#include "src/obs/observability.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "src/obs/introspect.hpp"
#include "src/obs/recorder.hpp"

namespace hypatia::obs {

namespace {

struct HookList {
    std::mutex mu;
    std::vector<std::pair<int, std::function<void()>>> hooks;
    bool atexit_armed = false;
};

HookList& hook_list() {
    // Leaked: hooks may be registered from leaked singletons and must
    // stay callable during static destruction.
    static HookList* list = new HookList();
    return *list;
}

}  // namespace

void register_shutdown_hook(int priority, std::function<void()> fn) {
    HookList& list = hook_list();
    std::lock_guard<std::mutex> lock(list.mu);
    list.hooks.emplace_back(priority, std::move(fn));
    if (!list.atexit_armed) {
        list.atexit_armed = true;
        std::atexit(&run_shutdown_hooks);
    }
}

void run_shutdown_hooks() {
    HookList& list = hook_list();
    std::vector<std::pair<int, std::function<void()>>> hooks;
    {
        std::lock_guard<std::mutex> lock(list.mu);
        hooks.swap(list.hooks);
    }
    std::stable_sort(hooks.begin(), hooks.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [priority, fn] : hooks) {
        try {
            fn();
        } catch (...) {
        }
    }
}

Observability& Observability::instance() {
    // Intentionally leaked (like FlightRecorder): the introspection
    // server's serve thread and the shutdown/fatal-signal hooks read the
    // metrics registry; a function-local static here would destruct
    // before the server static constructed inside this constructor,
    // leaving a window where the serve thread reads freed memory.
    static Observability* instance = new Observability();
    return *instance;
}

Observability::Observability() {
    register_core_metrics();
    tracer_.configure_from_env();
    // The flight recorder self-configures from HYPATIA_RECORDER* on
    // first touch; doing it here pins "first touch" to context creation
    // so every component sees one consistent configuration.
    FlightRecorder::instance();
    IntrospectionServer::maybe_start_from_env();
}

void Observability::register_core_metrics() {
    // The stable metric schema (documented in README.md). Components
    // get-or-create the same names, so a binary that never constructs a
    // simulator still reports the full set (at zero) in its manifest.
    metrics_.counter("sim.events_executed");
    metrics_.counter("sim.run_until_calls");
    metrics_.gauge("sim.time_ns");
    metrics_.gauge("sim.event_queue_peak");
    metrics_.counter("net.tx_packets");
    metrics_.counter("net.tx_bytes");
    metrics_.counter("net.rx_packets");
    metrics_.counter("net.queue_drops");
    metrics_.counter("net.no_route_drops");
    metrics_.counter("net.ttl_drops");
    metrics_.histogram("net.queue_depth");
    metrics_.counter("tcp.retransmissions");
    metrics_.counter("tcp.timeouts");
    metrics_.counter("tcp.fast_retransmits");
    metrics_.counter("tcp.dup_acks");
    metrics_.histogram("tcp.rtt_us");
    metrics_.histogram("tcp.cwnd_segments");
    metrics_.counter("route.fstate_installs");
    metrics_.counter("route.fstate_entries_changed");
    metrics_.counter("route.snapshots");
    metrics_.counter("route.snapshot_refresh");
    metrics_.counter("route.gsl_rows_patched");
    metrics_.counter("route.dijkstra_runs");
    metrics_.counter("propagation.sgp4_cache_fills");
    metrics_.counter("flowsim.flows_created");
    metrics_.counter("flowsim.flows_completed");
    metrics_.counter("flowsim.epochs");
    metrics_.counter("flowsim.solver_runs");
    metrics_.counter("flowsim.solver_rounds");
    metrics_.counter("flowsim.unreachable_flow_epochs");
    metrics_.gauge("flowsim.active_flows_peak");
    metrics_.histogram("flowsim.fct_ms");
    metrics_.histogram("flowsim.flow_rate_kbps");
    metrics_.counter("fault.links_masked");
    metrics_.counter("fault.packets_dropped");
    metrics_.counter("fault.flows_severed");
    metrics_.counter("fault.segments");
    metrics_.gauge("fault.nodes_down");
    metrics_.counter("emu.epochs");
    metrics_.counter("emu.deadline_misses");
    metrics_.counter("emu.schedule_entries");
    metrics_.histogram("emu.epoch_busy_us");
    metrics_.histogram("emu.epoch_lag_us");
    metrics_.gauge("emu.realtime_factor");
    metrics_.counter("ckpt.generations_written");
    metrics_.counter("ckpt.bytes_written");
    metrics_.counter("ckpt.restores");
    metrics_.counter("ckpt.restore_rejected");
    metrics_.counter("ckpt.corrupt_skipped");
    metrics_.histogram("ckpt.write_us");
}

void Observability::reset() {
    metrics_.reset_values();
    profiler_.reset();
    tracer_.reset();
}

}  // namespace hypatia::obs
