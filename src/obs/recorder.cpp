#include "src/obs/recorder.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <tuple>

#include "src/obs/observability.hpp"

namespace hypatia::obs {

namespace {

/// The ring the current thread records into (owned by the recorder's
/// registry; threads only keep a borrowed pointer, so pool workers that
/// outlive a drain keep recording into the same slots).
thread_local FlightRecorder::Ring* t_ring = nullptr;

int format_event(char* buf, std::size_t size, const Event& e) {
    return std::snprintf(
        buf, size,
        "{\"t\":%lld,\"kind\":\"%s\",\"a\":%d,\"b\":%d,\"c\":%d,\"d\":%d,"
        "\"value\":%.12g}\n",
        static_cast<long long>(e.t), event_kind_name(e.kind), e.a, e.b, e.c, e.d,
        e.value);
}

bool event_less(const Event& lhs, const Event& rhs) {
    return std::tie(lhs.t, lhs.kind, lhs.a, lhs.b, lhs.c, lhs.d, lhs.value) <
           std::tie(rhs.t, rhs.kind, rhs.a, rhs.b, rhs.c, rhs.d, rhs.value);
}

/// Extra fatal-signal work chained ahead of the recorder dump
/// (set_fatal_signal_hook) — the checkpoint image writer.
std::atomic<void (*)()> g_fatal_hook{nullptr};

void crash_signal_handler(int signo) {
    // Defined fatal-signal order: best-effort checkpoint first (the
    // recoverable state), then the post-mortem recorder dump, then the
    // default disposition.
    if (void (*hook)() = g_fatal_hook.load(std::memory_order_acquire)) hook();
    FlightRecorder& rec = FlightRecorder::instance();
    if (!rec.crash_dump_path().empty()) {
        const int fd = ::open(rec.crash_dump_path().c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC, 0644);
        if (fd >= 0) {
            rec.dump_unlocked(fd);
            ::close(fd);
        }
    }
    // Restore the default disposition and re-raise so the process still
    // dies with the original signal (core dumps, sanitizer reports and
    // exit codes are unaffected beyond the dumps above).
    ::signal(signo, SIG_DFL);
    ::raise(signo);
}

void drain_at_exit() {
    FlightRecorder& rec = FlightRecorder::instance();
    if (!rec.crash_dump_path().empty()) {
        rec.drain_to_jsonl(rec.crash_dump_path());
    }
}

}  // namespace

const char* event_kind_name(EventKind kind) {
    switch (kind) {
        case EventKind::kEpochAdvance: return "epoch";
        case EventKind::kPathChange: return "path_change";
        case EventKind::kFaultDown: return "fault_down";
        case EventKind::kFaultUp: return "fault_up";
        case EventKind::kFlowResolve: return "flow_resolve";
        case EventKind::kFlowSevered: return "flow_severed";
        case EventKind::kTcpCwnd: return "tcp_cwnd";
        case EventKind::kTcpRto: return "tcp_rto";
        case EventKind::kFstateInstall: return "fstate_install";
    }
    return "unknown";
}

/// Fixed-capacity overwrite-oldest ring. push() and the drain-side
/// readers serialize on a per-ring spinlock (uncontended in practice:
/// one writer — the owning thread — and drains are serial sections).
struct FlightRecorder::Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}

    void lock() const {
        while (lk.test_and_set(std::memory_order_acquire)) {
        }
    }
    void unlock() const { lk.clear(std::memory_order_release); }

    void push(const Event& e) {
        lock();
        slots[static_cast<std::size_t>(head % slots.size())] = e;
        ++head;
        unlock();
    }

    /// Appends the buffered events (oldest first) to `out`.
    void collect(std::vector<Event>& out) const {
        lock();
        const std::uint64_t n = std::min<std::uint64_t>(head, slots.size());
        for (std::uint64_t i = head - n; i < head; ++i) {
            out.push_back(slots[static_cast<std::size_t>(i % slots.size())]);
        }
        unlock();
    }

    mutable std::atomic_flag lk = ATOMIC_FLAG_INIT;
    std::vector<Event> slots;
    std::uint64_t head = 0;  // total pushes; buffered = min(head, size)
};

FlightRecorder& FlightRecorder::instance() {
    // Intentionally leaked: the atexit drain and the fatal-signal
    // handler must be able to read the rings during process shutdown,
    // after function-local statics would already have been destroyed.
    static FlightRecorder* instance = new FlightRecorder();
    return *instance;
}

FlightRecorder::FlightRecorder() { configure_from_env(); }

void FlightRecorder::set_capacity(std::size_t events) {
    capacity_ = std::clamp<std::size_t>(events, 64, std::size_t{1} << 22);
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
    if (t_ring == nullptr) {
        std::lock_guard<std::mutex> lock(mu_);
        rings_.push_back(std::make_unique<Ring>(capacity_));
        t_ring = rings_.back().get();
    }
    return *t_ring;
}

void FlightRecorder::record_slow(const Event& e) { local_ring().push(e); }

std::vector<Event> FlightRecorder::snapshot() const {
    std::vector<Event> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& ring : rings_) ring->collect(out);
    }
    std::sort(out.begin(), out.end(), event_less);
    return out;
}

std::vector<Event> FlightRecorder::drain() {
    std::vector<Event> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& ring : rings_) {
            ring->collect(out);
            ring->lock();
            ring->head = 0;
            ring->unlock();
        }
    }
    std::sort(out.begin(), out.end(), event_less);
    return out;
}

void FlightRecorder::drain_to_jsonl(const std::string& path) {
    const std::vector<Event> events = drain();
    std::ofstream out(path);
    if (!out) throw std::runtime_error("recorder: cannot open " + path);
    char buf[256];
    for (const Event& e : events) {
        format_event(buf, sizeof(buf), e);
        out << buf;
    }
}

std::uint64_t FlightRecorder::dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t dropped = 0;
    for (const auto& ring : rings_) {
        ring->lock();
        if (ring->head > ring->slots.size()) dropped += ring->head - ring->slots.size();
        ring->unlock();
    }
    return dropped;
}

std::size_t FlightRecorder::buffered() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& ring : rings_) {
        ring->lock();
        n += static_cast<std::size_t>(
            std::min<std::uint64_t>(ring->head, ring->slots.size()));
        ring->unlock();
    }
    return n;
}

void FlightRecorder::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
        ring->lock();
        ring->head = 0;
        if (ring->slots.size() != capacity_) {
            ring->slots.assign(capacity_, Event{});
        }
        ring->unlock();
    }
}

void FlightRecorder::dump_unlocked(int fd) const {
    // Fatal-signal path: no locks (the crashing thread may hold one),
    // no allocation. Events stream out per ring, unsorted — post-mortem
    // tooling (the timeline reconstructor) sorts on load.
    char buf[256];
    for (const auto& ring : rings_) {
        const std::uint64_t head = ring->head;
        const std::uint64_t n = std::min<std::uint64_t>(head, ring->slots.size());
        for (std::uint64_t i = head - n; i < head; ++i) {
            const Event& e = ring->slots[static_cast<std::size_t>(i % ring->slots.size())];
            const int len = format_event(buf, sizeof(buf), e);
            if (len > 0) {
                [[maybe_unused]] const ssize_t written =
                    ::write(fd, buf, static_cast<std::size_t>(len));
            }
        }
    }
}

void set_fatal_signal_hook(void (*hook)()) {
    g_fatal_hook.store(hook, std::memory_order_release);
}

void install_fatal_signal_handlers() {
    static std::atomic<bool> installed{false};
    if (installed.exchange(true)) return;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &crash_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    for (const int signo : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
        ::sigaction(signo, &sa, nullptr);
    }
}

void FlightRecorder::install_crash_handler(const std::string& path) {
    crash_path_ = path;
    install_fatal_signal_handlers();
    // The normal-exit drain runs through the ordered shutdown hooks
    // (after the introspection stop and the final checkpoint) instead
    // of a bare atexit, so the exit sequence is defined.
    static bool drain_registered = false;
    if (drain_registered) return;
    drain_registered = true;
    register_shutdown_hook(kShutdownRecorderDrain, &drain_at_exit);
}

void FlightRecorder::configure_from_env() {
    if (const char* env = std::getenv("HYPATIA_RECORDER")) {
        const std::string v = env;
        if (v == "off" || v == "0" || v == "false") set_enabled(false);
        else set_enabled(true);
    }
    if (const char* env = std::getenv("HYPATIA_RECORDER_CAPACITY")) {
        char* end = nullptr;
        const long long n = std::strtoll(env, &end, 10);
        if (end != env && n > 0) set_capacity(static_cast<std::size_t>(n));
    }
    if (const char* env = std::getenv("HYPATIA_RECORDER_FILE")) {
        install_crash_handler(*env != '\0' ? env : "flight_recorder.jsonl");
    }
}

}  // namespace hypatia::obs
