#include "src/obs/profile.hpp"

#include <chrono>
#include <string_view>

#include "src/obs/observability.hpp"

namespace hypatia::obs {

namespace {

thread_local ProfileScope* g_current_scope = nullptr;

std::uint64_t wall_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

void Profiler::record(const char* name, std::uint64_t total_ns, std::uint64_t self_ns,
                      std::uint64_t calls) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = phases_.find(std::string_view(name));
    if (it == phases_.end()) it = phases_.emplace(name, PhaseStats{}).first;
    it->second.calls += calls;
    it->second.total_ns += total_ns;
    it->second.self_ns += self_ns;
}

ProfileScope::ProfileScope(const char* name, std::uint32_t weight, bool active)
    : name_(name), weight_(weight == 0 ? 1 : weight),
      active_(active && profiler().enabled()) {
    if (!active_) return;
    parent_ = g_current_scope;
    g_current_scope = this;
    start_ns_ = wall_ns();
}

ProfileScope::~ProfileScope() {
    if (!active_) return;
    const std::uint64_t elapsed = (wall_ns() - start_ns_) * weight_;
    const std::uint64_t self = elapsed > child_ns_ ? elapsed - child_ns_ : 0;
    profiler().record(name_, elapsed, self, weight_);
    g_current_scope = parent_;
    if (parent_ != nullptr) parent_->child_ns_ += elapsed;
}

}  // namespace hypatia::obs
