// The run manifest: one JSON document per run recording what ran (name,
// wall-clock timestamp, git describe), with which parameters, where the
// wall-clock time went (per-phase profiler breakdown, plus the derived
// propagation / routing / event-loop rollup) and the final values of
// every registered metric. Benches drop it next to their CSV artifacts
// as run_manifest.json; experiment helpers write one when asked
// (config field or HYPATIA_MANIFEST). Manifests parse back losslessly,
// so downstream tooling can diff runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/profile.hpp"

namespace hypatia::obs {

class RunManifest {
  public:
    struct Phase {
        std::uint64_t calls = 0;
        double total_s = 0.0;
        double self_s = 0.0;
    };

    void set_name(std::string name) { name_ = std::move(name); }
    const std::string& name() const { return name_; }

    /// Fills created_utc and git_describe from the environment (wall
    /// clock; `git describe --always --dirty`, "unknown" outside a
    /// checkout).
    void stamp_environment();
    const std::string& created_utc() const { return created_utc_; }
    const std::string& git_describe() const { return git_describe_; }

    void set_param(const std::string& key, const std::string& value) {
        params_[key] = value;
    }
    void set_param(const std::string& key, double value);
    const std::map<std::string, std::string>& params() const { return params_; }

    /// Snapshots the profiler phases and every registered metric.
    void capture(const Profiler& profiler, const MetricsRegistry& metrics);

    const std::map<std::string, Phase>& phases() const { return phases_; }
    /// Flat metric view: counters and gauges by name; histograms expand
    /// to name.count / name.mean / name.p50 / name.p99 / name.max.
    const std::map<std::string, double>& metrics() const { return metrics_; }

    json::Value to_json() const;
    std::string dump() const { return to_json().dump(2); }
    void write(const std::string& path) const;

    static RunManifest parse(const std::string& text);
    static RunManifest read_file(const std::string& path);

  private:
    std::string name_;
    std::string created_utc_;
    std::string git_describe_;
    std::map<std::string, std::string> params_;
    std::map<std::string, Phase> phases_;
    std::map<std::string, double> metrics_;
};

}  // namespace hypatia::obs
