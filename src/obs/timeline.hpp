// Timeline reconstruction over flight-recorder events: joins the flat
// event stream by entity (pair, flow, satellite, ISL, ground station)
// and attributes every path change to a cause — the record that turns
// "pair 12->87 RTT jumped at t=173 s" into "GSL handover sat 501 ->
// sat 502, triggered by fault outage of sat 501".
//
// Attribution model: LEO path changes have exactly three causes in this
// simulator — constellation motion (handover), a fault transition
// severing the old path, or a repair restoring a shorter one. A path
// change observed at step time t is attributed to a fault (or repair)
// transition recorded in the half-open window (t - w, t], where w is
// the epoch/step interval (inferred from the recorded epoch advances,
// or set explicitly); with no transition in the window the change is a
// plain handover. tests/test_timeline.cpp cross-checks the attribution
// against the generating fault schedule.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/recorder.hpp"

namespace hypatia::obs {

enum class Cause : std::uint8_t {
    kNone = 0,      // event kinds that need no attribution
    kHandover = 1,  // constellation motion
    kFault = 2,     // an outage transition inside the attribution window
    kRecovery = 3,  // a repair transition inside the attribution window
};
const char* cause_name(Cause cause);

struct TimelineEntry {
    Event event;
    Cause cause = Cause::kNone;
    /// Human-readable one-liner ("next hop sat 501 -> sat 502 ...").
    std::string note;
};

struct EntityTimeline {
    std::string entity;
    std::vector<TimelineEntry> entries;  // ascending by event time
};

struct TimelineOptions {
    /// Fault-attribution window (see header comment); 0 infers the
    /// epoch interval from the recorded epoch-advance events and falls
    /// back to 1 s when none were recorded.
    TimeNs attribution_window = 0;
};

class Timeline {
  public:
    /// Builds per-entity timelines from a drained (or snapshotted)
    /// event stream. The input need not be sorted.
    static Timeline build(std::vector<Event> events, TimelineOptions options = {});

    /// Entities sorted by key ("flow:12", "isl:3-45", "pair:12->87",
    /// "sat:501", ...).
    const std::vector<EntityTimeline>& entities() const { return entities_; }
    const EntityTimeline* find(const std::string& entity) const;
    TimeNs attribution_window() const { return window_; }

    /// One JSON object per entry:
    ///   {"entity":"pair:12->87","t":...,"kind":"path_change",
    ///    "cause":"fault","a":...,...,"note":"..."}
    void write_jsonl(std::ostream& out) const;
    /// CSV with header entity,t_ns,kind,cause,a,b,c,d,value,note.
    void write_csv(std::ostream& out) const;

    /// The grouping key an event files under.
    static std::string entity_key(const Event& event);

  private:
    std::vector<EntityTimeline> entities_;
    TimeNs window_ = 0;
};

}  // namespace hypatia::obs
