// Profiling scopes: RAII wall-clock timers aggregated per phase name.
// Scopes nest; each phase accumulates both inclusive time and self time
// (inclusive minus time spent in nested scopes), so the per-phase
// breakdown of a run sums cleanly: the event-loop scope's self time
// excludes the routing recomputes it triggers, which in turn exclude
// the SGP4 propagation they trigger.
//
// Hot call sites can sample: a scope constructed with weight N times
// only one in N invocations (the macro keeps the call-site counter) and
// records the observed duration scaled by N — the per-phase totals stay
// unbiased while the untimed invocations cost one counter increment.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace hypatia::obs {

/// Phase aggregation. Nesting and self-time are tracked per thread (the
/// scope stack is thread-local), so a parallel region's scopes attribute
/// their own self time correctly; the fold into the shared phase table
/// at scope exit is mutex-guarded. Note that inside a parallel region
/// the per-phase totals sum *thread* time, which can exceed wall clock —
/// that is the number the speedup benches want.
class Profiler {
  public:
    struct PhaseStats {
        std::uint64_t calls = 0;
        std::uint64_t total_ns = 0;  // inclusive wall clock (per thread)
        std::uint64_t self_ns = 0;   // exclusive of nested scopes
    };

    /// Folds one (possibly weighted) scope observation into the phase.
    void record(const char* name, std::uint64_t total_ns, std::uint64_t self_ns,
                std::uint64_t calls);

    std::map<std::string, PhaseStats, std::less<>> snapshot() const {
        std::lock_guard<std::mutex> lock(mu_);
        return phases_;
    }
    void reset() {
        std::lock_guard<std::mutex> lock(mu_);
        phases_.clear();
    }

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool e) { enabled_.store(e, std::memory_order_relaxed); }

  private:
    std::atomic<bool> enabled_{true};
    mutable std::mutex mu_;
    std::map<std::string, PhaseStats, std::less<>> phases_;
};

/// Times the enclosing block and records it into the global profiler
/// (obs::profiler()). `name` must outlive the scope — use string
/// literals. See Profiler for the weight/sampling contract.
class ProfileScope {
  public:
    explicit ProfileScope(const char* name, std::uint32_t weight = 1,
                          bool active = true);
    ~ProfileScope();
    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    const char* name_;
    std::uint32_t weight_;
    bool active_;
    std::uint64_t start_ns_ = 0;
    std::uint64_t child_ns_ = 0;
    ProfileScope* parent_ = nullptr;
};

#define HYPATIA_PROFILE_CONCAT2(a, b) a##b
#define HYPATIA_PROFILE_CONCAT(a, b) HYPATIA_PROFILE_CONCAT2(a, b)

/// Times the rest of the enclosing block under `name`.
#define HYPATIA_PROFILE_SCOPE(name) \
    ::hypatia::obs::ProfileScope HYPATIA_PROFILE_CONCAT(hypatia_prof_, __LINE__)(name)

/// Sampled variant for hot call sites: times one in `every` invocations
/// and scales the recorded duration by `every`.
#define HYPATIA_PROFILE_SCOPE_SAMPLED(name, every)                                   \
    static thread_local std::uint32_t HYPATIA_PROFILE_CONCAT(hypatia_prof_ctr_,      \
                                                             __LINE__) = 0;          \
    ::hypatia::obs::ProfileScope HYPATIA_PROFILE_CONCAT(hypatia_prof_, __LINE__)(    \
        name, (every),                                                               \
        (HYPATIA_PROFILE_CONCAT(hypatia_prof_ctr_, __LINE__)++ % (every)) == 0)

}  // namespace hypatia::obs
