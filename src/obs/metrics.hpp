// The metrics registry: named counters, gauges and log-bucketed
// (HDR-style) histograms that every simulator component registers into.
// Components look a metric up by name once (at construction) and keep
// the returned pointer — recording is then a couple of integer
// operations, cheap enough for per-packet hot paths.
//
// Thread-safety (DESIGN.md "Threading model"): recording is safe from
// parallel_for workers. Counters and gauges are atomics updated with
// relaxed ordering (totals are exact; ordering against other memory is
// irrelevant for monotone tallies). Histograms serialize recording
// through a per-histogram spinlock — the uncontended cost is a few
// nanoseconds on top of the bucket increment. Registry lookups
// (get-or-create) take a registry mutex; the map references returned by
// counters()/gauges()/histograms() are for serial reporting code only.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hypatia::obs {

/// Monotone event count (packets sent, drops, retransmissions, ...).
/// Exact under concurrent increments from any number of threads.
class Counter {
  public:
    void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written point-in-time value (sim clock, queue peak, scenario
/// parameters). set_max is a CAS loop, so concurrent peak-tracking
/// keeps the true maximum.
class Gauge {
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    /// Keeps the maximum of all observations (peak tracking).
    void set_max(double v) {
        double cur = value_.load(std::memory_order_relaxed);
        while (v > cur &&
               !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/// Distribution of non-negative integer samples in logarithmic buckets
/// with 8 sub-buckets per power of two (HDR-histogram style): values
/// 0..7 are exact, larger values land in a bucket within 12.5% of their
/// magnitude. Recording is O(1) with no allocation after warm-up.
/// Recording and reading are serialized on an internal spinlock.
class Histogram {
  public:
    void record(std::uint64_t v);

    std::uint64_t count() const;
    std::uint64_t sum() const;
    std::uint64_t min() const;
    std::uint64_t max() const;
    double mean() const;
    /// Lower bound of the bucket holding the p-th percentile (p in
    /// [0, 100]); 0 when empty.
    std::uint64_t percentile(double p) const;
    void reset();

    /// Full internal state, for checkpoint save/restore (src/ckpt/): a
    /// restored histogram answers every query exactly like the one that
    /// was saved.
    struct State {
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = ~std::uint64_t{0};
        std::uint64_t max = 0;
    };
    State state() const;
    void restore(const State& s);

    /// Bucket mapping, exposed for tests.
    static std::size_t bucket_index(std::uint64_t v) {
        constexpr unsigned kSubBits = 3;
        if (v < (1u << kSubBits)) return static_cast<std::size_t>(v);
        const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
        const unsigned shift = msb - kSubBits;
        return static_cast<std::size_t>(((msb - kSubBits) << kSubBits) +
                                        ((v >> shift) & ((1u << kSubBits) - 1)) +
                                        (1u << kSubBits));
    }
    /// Inverse of bucket_index on bucket starts. Valid domain is the
    /// reachable indices 0..495 (495 = bucket_index(~0ull)); 496 would
    /// need a 64-bit shift (UB) and no recorded value can produce it.
    static std::uint64_t bucket_lower_bound(std::size_t index) {
        constexpr unsigned kSubBits = 3;
        if (index < (1u << kSubBits)) return index;
        const std::uint64_t block = (index - (1u << kSubBits)) >> kSubBits;
        const std::uint64_t sub = (index - (1u << kSubBits)) & ((1u << kSubBits) - 1);
        const unsigned msb = static_cast<unsigned>(block) + kSubBits;
        return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
    }

  private:
    void lock() const {
        while (lock_.test_and_set(std::memory_order_acquire)) {
        }
    }
    void unlock() const { lock_.clear(std::memory_order_release); }

    mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/// Name -> metric map with get-or-create semantics. References returned
/// by the accessors stay valid for the registry's lifetime (node-based
/// storage). Registering a name twice with different kinds throws.
/// Lookups are mutex-guarded (safe from workers); the map accessors
/// below are for serial reporting code (manifests, tests) only.
class MetricsRegistry {
  public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    std::size_t size() const;

    /// Zeroes every metric's value; registrations (and outstanding
    /// pointers) stay valid.
    void reset_values();

    const std::map<std::string, Counter>& counters() const { return counters_; }
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }
    const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  private:
    void check_kind(const std::string& name, const char* kind) const;

    mutable std::mutex mu_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

}  // namespace hypatia::obs
