// The metrics registry: named counters, gauges and log-bucketed
// (HDR-style) histograms that every simulator component registers into.
// Components look a metric up by name once (at construction) and keep
// the returned pointer — recording is then a couple of integer
// operations, cheap enough for per-packet hot paths. The registry is
// single-threaded, like the simulator itself.
#pragma once

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hypatia::obs {

/// Monotone event count (packets sent, drops, retransmissions, ...).
class Counter {
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/// Last-written point-in-time value (sim clock, queue peak, scenario
/// parameters).
class Gauge {
  public:
    void set(double v) { value_ = v; }
    /// Keeps the maximum of all observations (peak tracking).
    void set_max(double v) {
        if (v > value_) value_ = v;
    }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/// Distribution of non-negative integer samples in logarithmic buckets
/// with 8 sub-buckets per power of two (HDR-histogram style): values
/// 0..7 are exact, larger values land in a bucket within 12.5% of their
/// magnitude. Recording is O(1) with no allocation after warm-up.
class Histogram {
  public:
    void record(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }
    double mean() const {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) / static_cast<double>(count_);
    }
    /// Lower bound of the bucket holding the p-th percentile (p in
    /// [0, 100]); 0 when empty.
    std::uint64_t percentile(double p) const;
    void reset();

    /// Bucket mapping, exposed for tests.
    static std::size_t bucket_index(std::uint64_t v) {
        constexpr unsigned kSubBits = 3;
        if (v < (1u << kSubBits)) return static_cast<std::size_t>(v);
        const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
        const unsigned shift = msb - kSubBits;
        return static_cast<std::size_t>(((msb - kSubBits) << kSubBits) +
                                        ((v >> shift) & ((1u << kSubBits) - 1)) +
                                        (1u << kSubBits));
    }
    static std::uint64_t bucket_lower_bound(std::size_t index) {
        constexpr unsigned kSubBits = 3;
        if (index < (1u << kSubBits)) return index;
        const std::uint64_t block = (index - (1u << kSubBits)) >> kSubBits;
        const std::uint64_t sub = (index - (1u << kSubBits)) & ((1u << kSubBits) - 1);
        const unsigned msb = static_cast<unsigned>(block) + kSubBits;
        return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/// Name -> metric map with get-or-create semantics. References returned
/// by the accessors stay valid for the registry's lifetime (node-based
/// storage). Registering a name twice with different kinds throws.
class MetricsRegistry {
  public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    std::size_t size() const {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Zeroes every metric's value; registrations (and outstanding
    /// pointers) stay valid.
    void reset_values();

    const std::map<std::string, Counter>& counters() const { return counters_; }
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }
    const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  private:
    void check_kind(const std::string& name, const char* kind) const;

    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

}  // namespace hypatia::obs
