// Structured event tracing: typed records (packet lifecycle, TCP state
// transitions, routing recomputes) routed through a pluggable TraceSink
// (JSONL, CSV, in-memory). Tracing is off by default; the hot-path
// contract is that a disabled category costs one inline bitmask test —
// call sites guard with `if (tracer.enabled(cat))` before building the
// record. Per-category sampling (keep 1 of N) bounds the output volume
// of high-rate categories like the packet lifecycle.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/util/units.hpp"

namespace hypatia::obs {

enum class TraceCategory : std::uint8_t {
    kPacket = 0,   // pkt.enqueue / pkt.drop / pkt.tx / pkt.deliver
    kTcp = 1,      // tcp.cwnd / tcp.fast_retransmit / tcp.rto / tcp.recovery_*
    kRouting = 2,  // route.fstate_install
    kSim = 3,      // simulator-level events
    kFlow = 4,     // flow.arrive / flow.complete / flow.epoch (flowsim)
    kFault = 5,    // fault.pkt_drop / fault.flow_severed (fault injection)
};
inline constexpr std::size_t kNumTraceCategories = 6;

const char* trace_category_name(TraceCategory c);
std::optional<TraceCategory> trace_category_from_name(const std::string& name);

/// One trace event. The generic fields carry the per-event payload
/// (documented per event name in README.md): `value` holds integral
/// detail (sequence number, bytes, entries changed), `fvalue` floating
/// point detail (cwnd in segments, RTT in seconds).
struct TraceRecord {
    TimeNs t = 0;
    TraceCategory category = TraceCategory::kSim;
    const char* event = "";
    int node = -1;
    int peer = -1;
    std::uint64_t flow_id = 0;
    std::int64_t value = 0;
    double fvalue = 0.0;
};

inline TraceRecord make_record(TimeNs t, TraceCategory category, const char* event,
                               int node, int peer = -1, std::uint64_t flow_id = 0,
                               std::int64_t value = 0, double fvalue = 0.0) {
    TraceRecord r;
    r.t = t;
    r.category = category;
    r.event = event;
    r.node = node;
    r.peer = peer;
    r.flow_id = flow_id;
    r.value = value;
    r.fvalue = fvalue;
    return r;
}

class TraceSink {
  public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceRecord& record) = 0;
    virtual void flush() {}
};

/// One JSON object per line: {"t":..,"cat":"packet","event":"pkt.drop",..}.
class JsonlTraceSink final : public TraceSink {
  public:
    explicit JsonlTraceSink(const std::string& path);
    void write(const TraceRecord& record) override;
    void flush() override { out_.flush(); }

  private:
    std::ofstream out_;
};

/// CSV with a fixed header: t_ns,category,event,node,peer,flow_id,value,fvalue.
class CsvTraceSink final : public TraceSink {
  public:
    explicit CsvTraceSink(const std::string& path);
    void write(const TraceRecord& record) override;
    void flush() override { out_.flush(); }

  private:
    std::ofstream out_;
};

/// Buffers records in memory; for tests and programmatic consumers.
class MemoryTraceSink final : public TraceSink {
  public:
    void write(const TraceRecord& record) override { records_.push_back(record); }
    const std::vector<TraceRecord>& records() const { return records_; }
    void clear() { records_.clear(); }

  private:
    std::vector<TraceRecord> records_;
};

class Tracer {
  public:
    /// The hot-path test: true only when the category is switched on AND
    /// a sink is attached.
    bool enabled(TraceCategory c) const {
        return (mask_ & (1u << static_cast<unsigned>(c))) != 0 && sink_ != nullptr;
    }

    void enable(TraceCategory c) { mask_ |= 1u << static_cast<unsigned>(c); }
    void disable(TraceCategory c) { mask_ &= ~(1u << static_cast<unsigned>(c)); }
    void enable_all() { mask_ = (1u << kNumTraceCategories) - 1; }
    void disable_all() { mask_ = 0; }
    unsigned category_mask() const { return mask_; }

    void set_sink(std::unique_ptr<TraceSink> sink) { sink_ = std::move(sink); }
    TraceSink* sink() { return sink_.get(); }

    /// Keep 1 of every `n` records of category `c` (n >= 1).
    void set_sample_every(TraceCategory c, std::uint32_t n) {
        sample_every_[static_cast<std::size_t>(c)] = n == 0 ? 1 : n;
    }

    /// Writes `record` to the sink if its category is enabled and the
    /// sampler selects it. Sampling state and the sink write are
    /// mutex-guarded, so a stray emit from a parallel region is safe —
    /// but parallel code must not emit by contract: interleaving would
    /// make the trace order depend on scheduling (DESIGN.md "Threading
    /// model"). Configuration (set_sink / enable / sampling) stays
    /// serial-only.
    void emit(const TraceRecord& record);

    std::uint64_t records_written() const {
        std::lock_guard<std::mutex> lock(mu_);
        return written_;
    }

    /// Reads HYPATIA_TRACE (comma-separated category names or "all"),
    /// HYPATIA_TRACE_FILE (default "trace.jsonl"; a ".csv" suffix
    /// selects the CSV sink) and HYPATIA_TRACE_SAMPLE (keep 1 of N for
    /// every enabled category). No-op when HYPATIA_TRACE is unset.
    void configure_from_env();

    /// Detaches the sink and disables every category (tests).
    void reset();

  private:
    mutable std::mutex mu_;  // guards the sampler state and sink writes
    unsigned mask_ = 0;
    std::unique_ptr<TraceSink> sink_;
    std::uint32_t sample_every_[kNumTraceCategories] = {1, 1, 1, 1, 1, 1};
    std::uint32_t sample_seen_[kNumTraceCategories] = {0, 0, 0, 0, 0, 0};
    std::uint64_t written_ = 0;
};

}  // namespace hypatia::obs
