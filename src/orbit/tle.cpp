#include "src/orbit/tle.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hypatia::orbit {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// JD -> (year, fractional day-of-year starting at 1.0).
void jd_to_year_doy(const JulianDate& jd, int& year, double& doy) {
    year = static_cast<int>(1900 + std::floor((jd.total() - 2415020.5) / 365.25));
    // Adjust the estimate across year boundaries.
    for (int adjust = 0; adjust < 3; ++adjust) {
        const double jan1 = julian_date_from_utc(year, 1, 1, 0, 0, 0.0).total();
        const double next_jan1 = julian_date_from_utc(year + 1, 1, 1, 0, 0, 0.0).total();
        if (jd.total() < jan1) {
            --year;
        } else if (jd.total() >= next_jan1) {
            ++year;
        } else {
            break;
        }
    }
    doy = (jd.day - julian_date_from_utc(year, 1, 1, 0, 0, 0.0).total()) + jd.frac + 1.0;
}

/// Formats a TLE "implied decimal point + exponent" field, e.g. " 11423-4"
/// for 0.11423e-4. Width is 8 characters.
std::string format_exp_field(double value) {
    char buf[32];
    if (value == 0.0) return " 00000+0";
    const char sign = value < 0.0 ? '-' : ' ';
    double mag = std::abs(value);
    int exponent = static_cast<int>(std::ceil(std::log10(mag)));
    double mantissa = mag / std::pow(10.0, exponent);
    long digits = std::lround(mantissa * 1e5);
    if (digits >= 100000) {  // rounding overflowed the mantissa
        digits /= 10;
        ++exponent;
    }
    std::snprintf(buf, sizeof buf, "%c%05ld%+d", sign, digits, exponent);
    return buf;
}

double parse_exp_field(const std::string& field) {
    // e.g. " 11423-4" or "+11423-4" or " 00000+0"
    if (field.size() < 8) throw std::invalid_argument("tle: short exponent field");
    const double sign = field[0] == '-' ? -1.0 : 1.0;
    const double mantissa = std::stod("0." + field.substr(1, 5));
    const int exponent = std::stoi(field.substr(6, 2));
    return sign * mantissa * std::pow(10.0, exponent);
}

void check_line(const std::string& line, char first_char) {
    if (line.size() < 69) throw std::invalid_argument("tle: line shorter than 69 chars");
    if (line[0] != first_char) throw std::invalid_argument("tle: wrong line number");
    const int expected = tle_checksum(line.substr(0, 68));
    const int actual = line[68] - '0';
    if (expected != actual) throw std::invalid_argument("tle: checksum mismatch");
}

}  // namespace

int tle_checksum(const std::string& line_without_checksum) {
    int sum = 0;
    for (char c : line_without_checksum) {
        if (c >= '0' && c <= '9') sum += c - '0';
        if (c == '-') sum += 1;
    }
    return sum % 10;
}

std::string Tle::line1() const {
    int year = 0;
    double doy = 0.0;
    jd_to_year_doy(epoch, year, doy);
    const int yy = year % 100;

    char ndot_buf[32];
    std::snprintf(ndot_buf, sizeof ndot_buf, "%c.%08ld",
                  mean_motion_dot < 0 ? '-' : ' ',
                  std::lround(std::abs(mean_motion_dot) * 1e8));

    char buf[80];
    std::snprintf(buf, sizeof buf, "1 %05dU %-8s %02d%012.8f %s %s %s 0 %4d",
                  satellite_number, international_designator.c_str(), yy, doy,
                  ndot_buf, format_exp_field(mean_motion_ddot).c_str(),
                  format_exp_field(bstar).c_str(), 999);
    std::string line(buf);
    line += static_cast<char>('0' + tle_checksum(line));
    return line;
}

std::string Tle::line2() const {
    char buf[80];
    std::snprintf(buf, sizeof buf,
                  "2 %05d %8.4f %8.4f %07ld %8.4f %8.4f %11.8f%5d",
                  satellite_number, inclination_deg, raan_deg,
                  std::lround(eccentricity * 1e7), arg_perigee_deg, mean_anomaly_deg,
                  mean_motion_rev_per_day, revolution_number);
    std::string line(buf);
    line += static_cast<char>('0' + tle_checksum(line));
    return line;
}

Sgp4Elements Tle::to_sgp4_elements() const {
    Sgp4Elements el;
    el.epoch = epoch;
    el.bstar = bstar;
    el.inclination_rad = inclination_deg * M_PI / 180.0;
    el.raan_rad = raan_deg * M_PI / 180.0;
    el.eccentricity = eccentricity;
    el.arg_perigee_rad = arg_perigee_deg * M_PI / 180.0;
    el.mean_anomaly_rad = mean_anomaly_deg * M_PI / 180.0;
    el.mean_motion_rad_per_min = mean_motion_rev_per_day * kTwoPi / 1440.0;
    return el;
}

Tle Tle::from_kepler(const KeplerianElements& kep, int satellite_number,
                     const std::string& name) {
    Tle tle;
    tle.satellite_number = satellite_number;
    tle.name = name;
    tle.epoch = kep.epoch;
    tle.inclination_deg = kep.inclination_deg;
    tle.raan_deg = kep.raan_deg;
    tle.eccentricity = kep.eccentricity;
    tle.arg_perigee_deg = kep.arg_perigee_deg;
    tle.mean_anomaly_deg = kep.mean_anomaly_deg;
    tle.mean_motion_rev_per_day = kep.mean_motion_rev_per_day();
    tle.revolution_number = 0;
    return tle;
}

Tle Tle::parse(const std::string& l1, const std::string& l2) {
    check_line(l1, '1');
    check_line(l2, '2');

    Tle tle;
    tle.satellite_number = std::stoi(l1.substr(2, 5));
    if (std::stoi(l2.substr(2, 5)) != tle.satellite_number) {
        throw std::invalid_argument("tle: satellite numbers differ between lines");
    }
    tle.international_designator = l1.substr(9, 8);

    const int yy = std::stoi(l1.substr(18, 2));
    const int year = yy < 57 ? 2000 + yy : 1900 + yy;
    const double doy = std::stod(l1.substr(20, 12));
    JulianDate jan1 = julian_date_from_utc(year, 1, 1, 0, 0, 0.0);
    tle.epoch = jan1.plus_seconds((doy - 1.0) * 86400.0);

    tle.mean_motion_dot = std::stod(l1.substr(33, 10));
    tle.mean_motion_ddot = parse_exp_field(l1.substr(44, 8));
    tle.bstar = parse_exp_field(l1.substr(53, 8));

    tle.inclination_deg = std::stod(l2.substr(8, 8));
    tle.raan_deg = std::stod(l2.substr(17, 8));
    tle.eccentricity = std::stod("0." + l2.substr(26, 7));
    tle.arg_perigee_deg = std::stod(l2.substr(34, 8));
    tle.mean_anomaly_deg = std::stod(l2.substr(43, 8));
    tle.mean_motion_rev_per_day = std::stod(l2.substr(52, 11));
    tle.revolution_number = std::stoi(l2.substr(63, 5));
    return tle;
}

}  // namespace hypatia::orbit
