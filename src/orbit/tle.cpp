#include "src/orbit/tle.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hypatia::orbit {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

/// JD -> (year, fractional day-of-year starting at 1.0).
void jd_to_year_doy(const JulianDate& jd, int& year, double& doy) {
    year = static_cast<int>(1900 + std::floor((jd.total() - 2415020.5) / 365.25));
    // Adjust the estimate across year boundaries.
    for (int adjust = 0; adjust < 3; ++adjust) {
        const double jan1 = julian_date_from_utc(year, 1, 1, 0, 0, 0.0).total();
        const double next_jan1 = julian_date_from_utc(year + 1, 1, 1, 0, 0, 0.0).total();
        if (jd.total() < jan1) {
            --year;
        } else if (jd.total() >= next_jan1) {
            ++year;
        } else {
            break;
        }
    }
    doy = (jd.day - julian_date_from_utc(year, 1, 1, 0, 0, 0.0).total()) + jd.frac + 1.0;
}

/// Formats a TLE "implied decimal point + exponent" field, e.g. " 11423-4"
/// for 0.11423e-4. Width is 8 characters.
std::string format_exp_field(double value) {
    char buf[32];
    if (value == 0.0) return " 00000+0";
    const char sign = value < 0.0 ? '-' : ' ';
    double mag = std::abs(value);
    int exponent = static_cast<int>(std::ceil(std::log10(mag)));
    double mantissa = mag / std::pow(10.0, exponent);
    long digits = std::lround(mantissa * 1e5);
    if (digits >= 100000) {  // rounding overflowed the mantissa
        digits /= 10;
        ++exponent;
    }
    std::snprintf(buf, sizeof buf, "%c%05ld%+d", sign, digits, exponent);
    return buf;
}

/// Error text carrying the field name and the raw column content, so a
/// bad catalogue file points at the offending value, not just "stoi".
[[noreturn]] void fail_field(const char* field, const std::string& raw,
                             const char* why) {
    throw std::invalid_argument(std::string("tle: ") + field + " field \"" + raw +
                                "\": " + why);
}

/// Strict fixed-column integer parse: optional sign, then digits and
/// column-alignment spaces only. std::stoi would silently accept
/// garbage suffixes ("12ab" -> 12) and give unhelpful errors.
int parse_int_field(const std::string& line, std::size_t pos, std::size_t len,
                    const char* field) {
    const std::string raw = line.substr(pos, len);
    std::size_t idx = 0;
    int value = 0;
    try {
        value = std::stoi(raw, &idx);
    } catch (const std::exception&) {
        fail_field(field, raw, "not a number");
    }
    for (; idx < raw.size(); ++idx) {
        if (raw[idx] != ' ') fail_field(field, raw, "trailing garbage");
    }
    return value;
}

/// Strict fixed-column floating-point parse (same contract as above).
double parse_double_field(const std::string& line, std::size_t pos, std::size_t len,
                          const char* field) {
    const std::string raw = line.substr(pos, len);
    std::size_t idx = 0;
    double value = 0.0;
    try {
        value = std::stod(raw, &idx);
    } catch (const std::exception&) {
        fail_field(field, raw, "not a number");
    }
    for (; idx < raw.size(); ++idx) {
        if (raw[idx] != ' ') fail_field(field, raw, "trailing garbage");
    }
    if (!std::isfinite(value)) fail_field(field, raw, "not finite");
    return value;
}

void check_range(double value, double lo, double hi, const char* field) {
    if (!(value >= lo && value <= hi)) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "tle: %s %.6g out of range [%g, %g]", field,
                      value, lo, hi);
        throw std::invalid_argument(buf);
    }
}

double parse_exp_field(const std::string& field, const char* name) {
    // e.g. " 11423-4" or "+11423-4" or " 00000+0"
    if (field.size() < 8) fail_field(name, field, "short exponent field");
    const double sign = field[0] == '-' ? -1.0 : 1.0;
    const std::string mantissa_digits = field.substr(1, 5);
    for (char c : mantissa_digits) {
        if (c < '0' || c > '9') fail_field(name, field, "non-digit mantissa");
    }
    const double mantissa = std::stod("0." + mantissa_digits);
    int exponent = 0;
    try {
        std::size_t idx = 0;
        exponent = std::stoi(field.substr(6, 2), &idx);
        if (idx != 2) fail_field(name, field, "bad exponent");
    } catch (const std::invalid_argument&) {
        fail_field(name, field, "bad exponent");
    }
    return sign * mantissa * std::pow(10.0, exponent);
}

void check_line(const std::string& line, char first_char) {
    if (line.size() < 69) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "tle: line %c truncated (%zu chars, need 69)", first_char,
                      line.size());
        throw std::invalid_argument(buf);
    }
    if (line[0] != first_char) {
        throw std::invalid_argument(std::string("tle: expected line to start with '") +
                                    first_char + "', got '" + line[0] + "'");
    }
    const int expected = tle_checksum(line.substr(0, 68));
    const int actual = line[68] - '0';
    if (expected != actual) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "tle: line %c checksum mismatch (computed %d, stored %c)",
                      first_char, expected, line[68]);
        throw std::invalid_argument(buf);
    }
}

}  // namespace

int tle_checksum(const std::string& line_without_checksum) {
    int sum = 0;
    for (char c : line_without_checksum) {
        if (c >= '0' && c <= '9') sum += c - '0';
        if (c == '-') sum += 1;
    }
    return sum % 10;
}

std::string Tle::line1() const {
    int year = 0;
    double doy = 0.0;
    jd_to_year_doy(epoch, year, doy);
    const int yy = year % 100;

    char ndot_buf[32];
    std::snprintf(ndot_buf, sizeof ndot_buf, "%c.%08ld",
                  mean_motion_dot < 0 ? '-' : ' ',
                  std::lround(std::abs(mean_motion_dot) * 1e8));

    char buf[80];
    std::snprintf(buf, sizeof buf, "1 %05dU %-8s %02d%012.8f %s %s %s 0 %4d",
                  satellite_number, international_designator.c_str(), yy, doy,
                  ndot_buf, format_exp_field(mean_motion_ddot).c_str(),
                  format_exp_field(bstar).c_str(), 999);
    std::string line(buf);
    line += static_cast<char>('0' + tle_checksum(line));
    return line;
}

std::string Tle::line2() const {
    char buf[80];
    std::snprintf(buf, sizeof buf,
                  "2 %05d %8.4f %8.4f %07ld %8.4f %8.4f %11.8f%5d",
                  satellite_number, inclination_deg, raan_deg,
                  std::lround(eccentricity * 1e7), arg_perigee_deg, mean_anomaly_deg,
                  mean_motion_rev_per_day, revolution_number);
    std::string line(buf);
    line += static_cast<char>('0' + tle_checksum(line));
    return line;
}

Sgp4Elements Tle::to_sgp4_elements() const {
    Sgp4Elements el;
    el.epoch = epoch;
    el.bstar = bstar;
    el.inclination_rad = inclination_deg * M_PI / 180.0;
    el.raan_rad = raan_deg * M_PI / 180.0;
    el.eccentricity = eccentricity;
    el.arg_perigee_rad = arg_perigee_deg * M_PI / 180.0;
    el.mean_anomaly_rad = mean_anomaly_deg * M_PI / 180.0;
    el.mean_motion_rad_per_min = mean_motion_rev_per_day * kTwoPi / 1440.0;
    return el;
}

Tle Tle::from_kepler(const KeplerianElements& kep, int satellite_number,
                     const std::string& name) {
    Tle tle;
    tle.satellite_number = satellite_number;
    tle.name = name;
    tle.epoch = kep.epoch;
    tle.inclination_deg = kep.inclination_deg;
    tle.raan_deg = kep.raan_deg;
    tle.eccentricity = kep.eccentricity;
    tle.arg_perigee_deg = kep.arg_perigee_deg;
    tle.mean_anomaly_deg = kep.mean_anomaly_deg;
    tle.mean_motion_rev_per_day = kep.mean_motion_rev_per_day();
    tle.revolution_number = 0;
    return tle;
}

Tle Tle::parse(const std::string& l1, const std::string& l2) {
    check_line(l1, '1');
    check_line(l2, '2');

    Tle tle;
    tle.satellite_number = parse_int_field(l1, 2, 5, "satellite number");
    if (parse_int_field(l2, 2, 5, "satellite number") != tle.satellite_number) {
        throw std::invalid_argument("tle: satellite numbers differ between lines");
    }
    tle.international_designator = l1.substr(9, 8);

    const int yy = parse_int_field(l1, 18, 2, "epoch year");
    const int year = yy < 57 ? 2000 + yy : 1900 + yy;
    const double doy = parse_double_field(l1, 20, 12, "epoch day-of-year");
    check_range(doy, 1.0, 367.0, "epoch day-of-year");
    JulianDate jan1 = julian_date_from_utc(year, 1, 1, 0, 0, 0.0);
    tle.epoch = jan1.plus_seconds((doy - 1.0) * 86400.0);

    tle.mean_motion_dot = parse_double_field(l1, 33, 10, "mean-motion derivative");
    tle.mean_motion_ddot = parse_exp_field(l1.substr(44, 8), "mean-motion 2nd derivative");
    tle.bstar = parse_exp_field(l1.substr(53, 8), "bstar");

    tle.inclination_deg = parse_double_field(l2, 8, 8, "inclination");
    check_range(tle.inclination_deg, 0.0, 180.0, "inclination");
    tle.raan_deg = parse_double_field(l2, 17, 8, "raan");
    check_range(tle.raan_deg, 0.0, 360.0, "raan");
    const std::string ecc_digits = l2.substr(26, 7);
    for (char c : ecc_digits) {
        if (c < '0' || c > '9') {
            fail_field("eccentricity", ecc_digits, "non-digit character");
        }
    }
    tle.eccentricity = std::stod("0." + ecc_digits);
    tle.arg_perigee_deg = parse_double_field(l2, 34, 8, "argument of perigee");
    check_range(tle.arg_perigee_deg, 0.0, 360.0, "argument of perigee");
    tle.mean_anomaly_deg = parse_double_field(l2, 43, 8, "mean anomaly");
    check_range(tle.mean_anomaly_deg, 0.0, 360.0, "mean anomaly");
    tle.mean_motion_rev_per_day = parse_double_field(l2, 52, 11, "mean motion");
    if (tle.mean_motion_rev_per_day <= 0.0) {
        fail_field("mean motion", l2.substr(52, 11), "must be positive");
    }
    tle.revolution_number = parse_int_field(l2, 63, 5, "revolution number");
    return tle;
}

}  // namespace hypatia::orbit
