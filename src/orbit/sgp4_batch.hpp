// Batched structure-of-arrays SGP4 (DESIGN.md §11).
//
// Sgp4Batch holds the init-time constants of N satellites in SoA form
// and propagates them in bulk: one call per shell per epoch instead of
// N virtual-ish per-satellite calls. Three kernels share the arithmetic
// in sgp4_core.hpp and are therefore byte-identical (pinned by
// tests/test_sgp4_differential.cpp):
//
//   kScalar — the reference: sgp4_propagate_core per satellite, exactly
//             what the Sgp4 class runs.
//   kBatch  — SoA loops: the zero-drag fast path (sgp4_propagate_fast)
//             where it applies, with per-call hoisting of the epoch
//             conversion and the GMST rotation.
//   kSimd   — kBatch plus a 4-lane vector fast path (AVX2 / NEON via
//             src/util/simd.hpp) for blocks of zero-drag satellites;
//             transcendentals stay lane-scalar libm, so lanes reproduce
//             the scalar trajectories bit for bit.
//
// Selected at runtime with HYPATIA_SGP4_KERNEL=scalar|batch|simd
// (default scalar — the optimized kernels are opt-in).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/orbit/sgp4.hpp"
#include "src/orbit/sgp4_core.hpp"
#include "src/orbit/time.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::orbit {

enum class Sgp4Kernel : std::uint8_t { kScalar = 0, kBatch, kSimd };

const char* sgp4_kernel_name(Sgp4Kernel kernel);

/// Reads HYPATIA_SGP4_KERNEL (scalar|batch|simd). Unset, empty or
/// unrecognized values select the scalar reference.
Sgp4Kernel sgp4_kernel_from_env();

/// True when the SIMD translation unit can run on this machine (always
/// true for the NEON and generic-lane builds; on x86 requires AVX2 at
/// runtime when the TU was compiled for it). When false, kSimd requests
/// silently run the kBatch loops instead.
bool sgp4_simd_available();

/// Lane implementation the SIMD TU was built with: "avx2", "neon" or
/// "generic".
const char* sgp4_simd_isa();

namespace batch_detail {

/// Raw SoA pointers for the zero-drag fast path, shared with the
/// ISA-specific translation unit (sgp4_batch_simd.cpp).
struct FastView {
    const double* mean_anomaly;
    const double* argp;
    const double* raan;
    const double* mdot;
    const double* argpdot;
    const double* nodedot;
    const double* am;
    const double* nm;
    const double* em;
    const double* sinim;
    const double* cosim;
    const double* aycof_t;
    const double* xlcof_t;
    const double* con41;
    const double* x1mth2;
    const double* x7thm1;
    const double* inclo;
};

/// Vectorized zero-drag fast path over satellites [begin, end) at
/// per-satellite minutes since each TLE epoch. The caller guarantees
/// every index in range is zero-drag and end - begin is a multiple
/// of 4. minutes/out/status are relative-indexed: entry i - begin
/// corresponds to satellite i, and out entries are valid only when the
/// matching status is kOk. Defined in sgp4_batch_simd.cpp.
void propagate_fast_simd(const FastView& view, const double* minutes,
                         std::size_t begin, std::size_t end, StateVector* out,
                         Sgp4Status* status);

/// Position-only variant: same contract and identical position bits,
/// but the velocity-only arithmetic is skipped — the cache-warming hot
/// path, which stores positions only, runs this one.
void propagate_fast_simd_pos(const FastView& view, const double* minutes,
                             std::size_t begin, std::size_t end, Vec3* out_pos,
                             Sgp4Status* status);

}  // namespace batch_detail

/// SoA batch of initialized SGP4 satellites. Build once per TLE set
/// (add() per satellite, cheap relative to sgp4_init_consts), then
/// propagate ranges per epoch. Propagation methods are const and
/// touch no shared mutable state: disjoint [begin, end) ranges may run
/// concurrently, which is how SatelliteMobility::warm_cache chunks the
/// batch across the thread pool.
class Sgp4Batch {
  public:
    Sgp4Batch() = default;

    void reserve(std::size_t n);

    /// Appends one initialized satellite; returns its batch index.
    std::size_t add(const Sgp4Consts& consts);

    std::size_t size() const { return consts_.size(); }
    bool empty() const { return consts_.empty(); }

    /// True when every satellite is drag-free (bstar == 0), i.e. the
    /// whole batch takes the fast path. All stock constellations are.
    bool all_zero_drag() const { return num_drag_ == 0; }

    const Sgp4Consts& consts(std::size_t i) const { return consts_[i]; }
    const JulianDate& epoch(std::size_t i) const { return consts_[i].el.epoch; }

    /// One satellite at `minutes` since its TLE epoch through the batch
    /// storage (fast path when drag-free, reference core otherwise).
    /// Bit-identical to Sgp4::propagate_minutes; statuses instead of
    /// throws. `out` is valid only when the return is kOk.
    Sgp4Status propagate_one(std::size_t i, double minutes, StateVector& out) const;

    /// TEME states for satellites [begin, end) at the shared absolute
    /// time `at` (per-satellite epoch offsets applied internally).
    /// out/status are relative-indexed: entry j corresponds to satellite
    /// begin + j, and out[j] is valid only when status[j] == kOk.
    void propagate_teme(Sgp4Kernel kernel, const JulianDate& at, std::size_t begin,
                        std::size_t end, StateVector* out, Sgp4Status* status) const;

    /// ECEF positions (km) for satellites [begin, end) at `at`: TEME
    /// propagation plus the GMST rotation, with gmst_radians() and its
    /// sin/cos hoisted to once per call — bit-identical to
    /// teme_to_ecef(propagate(at), at) per satellite. Relative-indexed
    /// outputs, as propagate_teme.
    void propagate_ecef(Sgp4Kernel kernel, const JulianDate& at, std::size_t begin,
                        std::size_t end, Vec3* out_ecef, Sgp4Status* status) const;

  private:
    batch_detail::FastView fast_view() const;

    /// propagate_one but position-only (velocity arithmetic skipped on
    /// the zero-drag fast path; positions bit-identical).
    Sgp4Status propagate_one_pos(std::size_t i, double minutes, Vec3& out_pos) const;

    // AoS copies for the reference / per-satellite paths.
    std::vector<Sgp4Consts> consts_;
    std::vector<Sgp4FastConsts> fast_;
    std::vector<std::uint8_t> zero_drag_;
    std::size_t num_drag_ = 0;

    // SoA columns for the batched fast path. Epochs are split to keep
    // the JulianDate day/frac precision trick.
    std::vector<double> epoch_day_, epoch_frac_;
    std::vector<double> mean_anomaly_, argp_, raan_;
    std::vector<double> mdot_, argpdot_, nodedot_;
    std::vector<double> am_, nm_, em_, sinim_, cosim_, aycof_t_, xlcof_t_;
    std::vector<double> con41_, x1mth2_, x7thm1_, inclo_;
};

}  // namespace hypatia::orbit
