// 4-lane vector implementation of the zero-drag SGP4 fast path.
//
// This TU is the only one compiled with ISA-specific flags (-mavx2 on
// x86 when available; NEON is baseline on aarch64; otherwise the
// generic 4-lane fallback in simd.hpp). Entry is gated behind
// sgp4_simd_available(), so no AVX2 instruction executes on a CPU
// without it.
//
// Bit-identity with the scalar fast path (and through it the reference
// kernel) holds because:
//   * every vector op used is a per-lane correctly-rounded IEEE basic
//     operation (add/sub/mul/div/sqrt/neg) — never FMA, matching the
//     no-contraction baseline the scalar code is built for;
//   * every expression mirrors the scalar code's association order
//     (a + b + c evaluated as (a + b) + c, etc.);
//   * transcendentals (fmod, sincos, atan2) are lane-scalar libm calls
//     on the exact same arguments;
//   * the Kepler iteration keeps per-lane scalar semantics: converged
//     lanes freeze (their sin/cos/eo1 stop updating, exactly where the
//     scalar loop would have exited) while unconverged lanes continue.
// tests/test_sgp4_differential.cpp byte-compares this path against the
// scalar kernel across thousands of element sets.
#include "src/orbit/sgp4_batch.hpp"

#include "src/orbit/sgp4_core.hpp"
#include "src/util/simd.hpp"

namespace hypatia::orbit::batch_detail {

namespace {

using namespace util::simd;
using sgp4_detail::kJ2;
using sgp4_detail::kRe;
using sgp4_detail::kXke;
using sgp4_detail::sincos_pair;
using sgp4_detail::wrap_two_pi;

/// Lane-scalar wrap into [0, 2*pi): same fmod + conditional add as the
/// scalar wrap_two_pi, per lane.
Vec4d wrap4(const Vec4d& x) {
    double a[4];
    store4(x, a);
    for (int i = 0; i < 4; ++i) a[i] = wrap_two_pi(a[i]);
    return load4(a);
}

/// Lane-scalar paired sin/cos (same sincos_pair the scalar kernels use).
void sincos4(const Vec4d& x, Vec4d& s, Vec4d& c) {
    double a[4], sa[4], ca[4];
    store4(x, a);
    for (int i = 0; i < 4; ++i) sincos_pair(a[i], sa[i], ca[i]);
    s = load4(sa);
    c = load4(ca);
}

/// Shared body for the full-state and position-only entry points.
/// kWithVelocity = false skips the velocity-only lanes (rdotl, rvdotl,
/// mvt, rvdot, the v orientation vector) and writes Vec3 positions into
/// out_pos; otherwise full StateVectors go to out_sv. The position
/// arithmetic is identical either way, mirroring the scalar
/// sgp4_finish_core template.
template <bool kWithVelocity>
void propagate_fast_simd_impl(const FastView& v, const double* minutes,
                              std::size_t begin, std::size_t end, StateVector* out_sv,
                              Vec3* out_pos, Sgp4Status* status) {
    const Vec4d one = bcast4(1.0);
    const Vec4d half_j2 = bcast4(0.5 * kJ2);       // matches scalar 0.5 * kJ2 * temp
    const Vec4d xke = bcast4(kXke);
    const Vec4d vkmpersec = bcast4(kRe * kXke / 60.0);
    const Vec4d re = bcast4(kRe);

    for (std::size_t i = begin; i < end; i += 4) {
        const std::size_t r = i - begin;  // relative index for minutes/out/status
        const Vec4d t = load4(minutes + r);

        // ---- secular rates (drag terms are exactly zero) ----
        const Vec4d xmdf = add4(load4(v.mean_anomaly + i), mul4(load4(v.mdot + i), t));
        const Vec4d argpdf = add4(load4(v.argp + i), mul4(load4(v.argpdot + i), t));
        const Vec4d nodedf = add4(load4(v.raan + i), mul4(load4(v.nodedot + i), t));

        const Vec4d nodem = wrap4(nodedf);
        const Vec4d argpm = wrap4(argpdf);
        const Vec4d xlm = wrap4(add4(add4(xmdf, argpdf), nodedf));
        const Vec4d mm = wrap4(sub4(sub4(xlm, argpm), nodem));

        // ---- long-period periodics (hoisted temp terms) ----
        Vec4d sin_argpm, cos_argpm;
        sincos4(argpm, sin_argpm, cos_argpm);
        const Vec4d em = load4(v.em + i);
        const Vec4d axnl = mul4(em, cos_argpm);
        const Vec4d aynl = add4(mul4(em, sin_argpm), load4(v.aycof_t + i));
        const Vec4d xl =
            add4(add4(add4(mm, argpm), nodem), mul4(load4(v.xlcof_t + i), axnl));

        // ---- Kepler's equation, masked per-lane iteration ----
        const Vec4d u = wrap4(sub4(xl, nodem));
        Vec4d eo1 = u;
        Vec4d sineo1 = bcast4(0.0), coseo1 = bcast4(0.0);
        Mask4 active = mask_all4();
        const Vec4d conv_eps = bcast4(1.0e-12);
        const Vec4d clamp_hi = bcast4(0.95);
        const Vec4d clamp_lo = bcast4(-0.95);
        const Vec4d zero = bcast4(0.0);
        for (int ktr = 1; ktr <= 10 && any4(active); ++ktr) {
            // sincos only for still-active lanes; frozen lanes keep the
            // values from their last active iteration, exactly like the
            // scalar loop's exit state.
            double e4[4], s4[4], c4[4];
            store4(eo1, e4);
            store4(sineo1, s4);
            store4(coseo1, c4);
            for (int l = 0; l < 4; ++l) {
                if (lane4(active, l)) sincos_pair(e4[l], s4[l], c4[l]);
            }
            sineo1 = load4(s4);
            coseo1 = load4(c4);
            // tem5 = 1 - coseo1*axnl - sineo1*aynl
            Vec4d tem5 = sub4(sub4(one, mul4(coseo1, axnl)), mul4(sineo1, aynl));
            // tem5 = (u - aynl*coseo1 + axnl*sineo1 - eo1) / tem5
            tem5 = div4(sub4(add4(sub4(u, mul4(aynl, coseo1)), mul4(axnl, sineo1)), eo1),
                        tem5);
            const Mask4 big = cmp_ge4(abs4(tem5), clamp_hi);
            const Vec4d clamped = blend4(cmp_gt4(tem5, zero), clamp_lo, clamp_hi);
            tem5 = blend4(big, tem5, clamped);
            eo1 = blend4(active, eo1, add4(eo1, tem5));
            active = mask_and4(active, cmp_ge4(abs4(tem5), conv_eps));
        }

        // ---- short-period periodics ----
        const Vec4d am = load4(v.am + i);
        const Vec4d ecose = add4(mul4(axnl, coseo1), mul4(aynl, sineo1));
        const Vec4d esine = sub4(mul4(axnl, sineo1), mul4(aynl, coseo1));
        const Vec4d el2 = add4(mul4(axnl, axnl), mul4(aynl, aynl));
        const Vec4d pl = mul4(am, sub4(one, el2));
        const Mask4 pl_bad = cmp_lt4(pl, zero);

        const Vec4d rl = mul4(am, sub4(one, ecose));
        Vec4d rdotl = bcast4(0.0), rvdotl = bcast4(0.0);
        if constexpr (kWithVelocity) {
            rdotl = div4(mul4(sqrt4(am), esine), rl);
            rvdotl = div4(sqrt4(pl), rl);
        }
        const Vec4d betal = sqrt4(sub4(one, el2));
        Vec4d temp = div4(esine, add4(one, betal));
        const Vec4d am_rl = div4(am, rl);
        const Vec4d sinu = mul4(am_rl, sub4(sub4(sineo1, aynl), mul4(axnl, temp)));
        const Vec4d cosu = mul4(am_rl, add4(sub4(coseo1, axnl), mul4(aynl, temp)));
        // su = atan2(sinu, cosu), lane-scalar.
        Vec4d su;
        {
            double s4[4], c4[4], o4[4];
            store4(sinu, s4);
            store4(cosu, c4);
            for (int l = 0; l < 4; ++l) o4[l] = std::atan2(s4[l], c4[l]);
            su = load4(o4);
        }
        const Vec4d sin2u = mul4(add4(cosu, cosu), sinu);
        const Vec4d cos2u = sub4(one, mul4(mul4(bcast4(2.0), sinu), sinu));
        temp = div4(one, pl);
        const Vec4d temp1 = mul4(half_j2, temp);
        const Vec4d temp2 = mul4(temp1, temp);

        const Vec4d con41 = load4(v.con41 + i);
        const Vec4d x1mth2 = load4(v.x1mth2 + i);
        const Vec4d x7thm1 = load4(v.x7thm1 + i);
        const Vec4d t2_15 = mul4(bcast4(1.5), temp2);  // matches scalar 1.5 * temp2
        const Vec4d mrt =
            add4(mul4(rl, sub4(one, mul4(mul4(t2_15, betal), con41))),
                 mul4(mul4(mul4(bcast4(0.5), temp1), x1mth2), cos2u));
        su = sub4(su, mul4(mul4(mul4(bcast4(0.25), temp2), x7thm1), sin2u));
        const Vec4d cosim = load4(v.cosim + i);
        const Vec4d sinim = load4(v.sinim + i);
        const Vec4d xnode = add4(nodem, mul4(mul4(t2_15, cosim), sin2u));
        const Vec4d xinc =
            add4(load4(v.inclo + i), mul4(mul4(mul4(t2_15, cosim), sinim), cos2u));

        // ---- orientation vectors and final state ----
        Vec4d sinsu, cossu, snod, cnod, sini, cosi;
        sincos4(su, sinsu, cossu);
        sincos4(xnode, snod, cnod);
        sincos4(xinc, sini, cosi);
        const Vec4d xmx = mul4(neg4(snod), cosi);
        const Vec4d xmy = mul4(cnod, cosi);
        const Vec4d ux = add4(mul4(xmx, sinsu), mul4(cnod, cossu));
        const Vec4d uy = add4(mul4(xmy, sinsu), mul4(snod, cossu));
        const Vec4d uz = mul4(sini, sinsu);

        const Mask4 mrt_bad = cmp_lt4(mrt, one);

        const Vec4d mrt_re = mul4(mrt, re);
        const Vec4d px = mul4(mrt_re, ux);
        const Vec4d py = mul4(mrt_re, uy);
        const Vec4d pz = mul4(mrt_re, uz);

        double px4[4], py4[4], pz4[4], wx4[4], wy4[4], wz4[4];
        store4(px, px4);
        store4(py, py4);
        store4(pz, pz4);
        if constexpr (kWithVelocity) {
            const Vec4d nm = load4(v.nm + i);
            const Vec4d nm_temp1 = mul4(nm, temp1);
            const Vec4d mvt =
                sub4(rdotl, div4(mul4(mul4(nm_temp1, x1mth2), sin2u), xke));
            const Vec4d rvdot =
                add4(rvdotl, div4(mul4(nm_temp1, add4(mul4(x1mth2, cos2u),
                                                      mul4(bcast4(1.5), con41))),
                                  xke));
            const Vec4d vx = sub4(mul4(xmx, cossu), mul4(cnod, sinsu));
            const Vec4d vy = sub4(mul4(xmy, cossu), mul4(snod, sinsu));
            const Vec4d vz = mul4(sini, cossu);
            const Vec4d wx = mul4(add4(mul4(mvt, ux), mul4(rvdot, vx)), vkmpersec);
            const Vec4d wy = mul4(add4(mul4(mvt, uy), mul4(rvdot, vy)), vkmpersec);
            const Vec4d wz = mul4(add4(mul4(mvt, uz), mul4(rvdot, vz)), vkmpersec);
            store4(wx, wx4);
            store4(wy, wy4);
            store4(wz, wz4);
        }
        for (int l = 0; l < 4; ++l) {
            // Same failure precedence as the scalar kernel: the
            // semi-latus check fires before the decay check.
            if (lane4(pl_bad, l)) {
                status[r + l] = Sgp4Status::kNegativeSemiLatus;
            } else if (lane4(mrt_bad, l)) {
                status[r + l] = Sgp4Status::kDecayed;
            } else {
                status[r + l] = Sgp4Status::kOk;
            }
            if constexpr (kWithVelocity) {
                out_sv[r + l].position_km = {px4[l], py4[l], pz4[l]};
                out_sv[r + l].velocity_km_per_s = {wx4[l], wy4[l], wz4[l]};
            } else {
                out_pos[r + l] = {px4[l], py4[l], pz4[l]};
            }
        }
    }
}

}  // namespace

void propagate_fast_simd(const FastView& view, const double* minutes,
                         std::size_t begin, std::size_t end, StateVector* out,
                         Sgp4Status* status) {
    propagate_fast_simd_impl<true>(view, minutes, begin, end, out, nullptr, status);
}

void propagate_fast_simd_pos(const FastView& view, const double* minutes,
                             std::size_t begin, std::size_t end, Vec3* out_pos,
                             Sgp4Status* status) {
    propagate_fast_simd_impl<false>(view, minutes, begin, end, nullptr, out_pos,
                                    status);
}

}  // namespace hypatia::orbit::batch_detail

namespace hypatia::orbit {

const char* sgp4_simd_isa() { return util::simd::isa_name(); }

}  // namespace hypatia::orbit
