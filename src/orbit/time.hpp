// Astronomical time: Julian dates, calendar conversion and Greenwich Mean
// Sidereal Time (GMST, IAU-82 model). GMST rotates the inertial TEME frame
// that SGP4 outputs into the Earth-fixed ECEF frame that ground stations
// live in.
#pragma once

#include <cstdint>

namespace hypatia::orbit {

/// A Julian date split into whole days and day fraction for precision
/// (a single double loses ~0.1 ms of resolution at J2000 epochs; the split
/// representation keeps sub-microsecond resolution for simulation offsets).
struct JulianDate {
    double day = 0.0;   // whole Julian day number part (e.g. 2451544.5)
    double frac = 0.0;  // fraction of a day in [0, 1)

    double total() const { return day + frac; }

    /// Returns this date advanced by `seconds`.
    JulianDate plus_seconds(double seconds) const;

    /// Seconds elapsed from `other` to this date.
    double seconds_since(const JulianDate& other) const;
};

/// Julian date of a proleptic-Gregorian UTC instant. Valid for years
/// 1900-2100 (the standard astronomical algorithm's validity window).
JulianDate julian_date_from_utc(int year, int month, int day, int hour, int minute,
                                double second);

/// The J2000.0 reference epoch: 2000-01-01 12:00:00 TT ~ JD 2451545.0.
inline constexpr double kJ2000 = 2451545.0;

/// Greenwich Mean Sidereal Time in radians in [0, 2*pi), IAU-82.
double gmst_radians(const JulianDate& jd);

/// Days since the TLE epoch origin (1949 December 31 00:00 UT) used by SGP4.
double days_since_1949_dec_31(const JulianDate& jd);

}  // namespace hypatia::orbit
