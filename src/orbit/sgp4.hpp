// SGP4 orbital propagator (near-Earth variant), WGS72 gravity model.
//
// This is the same analytic theory (Vallado's revision of Spacetrack
// Report #3) that backs python-sgp4 and the ns-3 satellite mobility model
// the paper builds on. Only the near-Earth branch is implemented: every
// shell in Table 1 of the paper orbits below 1,325 km (period < 120 min),
// far from the 225-minute deep-space threshold.
//
// Output positions are in the TEME (true equator, mean equinox) inertial
// frame in km; rotate with orbit::teme_to_ecef for Earth-fixed work.
//
// The init-time math lives in sgp4_init_consts() and the per-epoch math
// in sgp4_propagate_core() (sgp4_core.hpp), shared verbatim between this
// scalar reference class and the batched SoA kernels in sgp4_batch.hpp —
// the factoring is what makes the kernels byte-identical by construction
// (DESIGN.md §11).
#pragma once

#include <cstdint>

#include "src/orbit/kepler.hpp"
#include "src/orbit/time.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::orbit {

/// Initialization inputs in TLE units.
struct Sgp4Elements {
    JulianDate epoch;
    double bstar = 0.0;              // drag term, 1/earth-radii
    double inclination_rad = 0.0;
    double raan_rad = 0.0;
    double eccentricity = 0.0;
    double arg_perigee_rad = 0.0;
    double mean_anomaly_rad = 0.0;
    double mean_motion_rad_per_min = 0.0;  // Kozai mean motion (TLE field)
};

/// Everything sgp4_propagate_core() reads: the raw elements plus the
/// derived init-time constants (names follow the standard SGP4 code so
/// the implementation can be audited against the published theory).
/// A plain aggregate so the batch kernels can scatter it into SoA
/// arrays and gather it back without touching class internals.
struct Sgp4Consts {
    Sgp4Elements el;
    int isimp = 0;
    double aycof = 0, con41 = 0, cc1 = 0, cc4 = 0, cc5 = 0;
    double d2 = 0, d3 = 0, d4 = 0, delmo = 0, eta = 0, argpdot = 0;
    double omgcof = 0, sinmao = 0, t2cof = 0, t3cof = 0, t4cof = 0, t5cof = 0;
    double x1mth2 = 0, x7thm1 = 0, mdot = 0, nodedot = 0, xlcof = 0;
    double xmcof = 0, nodecf = 0;
    double no_unkozai = 0;
};

/// Propagation outcome. The scalar Sgp4 class maps non-kOk to the
/// std::runtime_error it has always thrown; the batch kernels report the
/// status per satellite instead (throwing from a vector lane would lose
/// which satellite died). Enumerators mirror the four failure points of
/// the propagation routine, in program order.
enum class Sgp4Status : std::uint8_t {
    kOk = 0,
    kEccentricityDiverged,  // "sgp4: eccentricity diverged"
    kSemiMajorDecayed,      // "sgp4: semi-major axis decayed"
    kNegativeSemiLatus,     // "sgp4: semi-latus rectum negative"
    kDecayed,               // "sgp4: satellite decayed below the surface"
};

/// The exact message propagate_minutes() throws for a given status
/// (kOk returns "sgp4: ok" and is never thrown).
const char* sgp4_status_message(Sgp4Status status);

/// Runs the (comparatively expensive) SGP4 init step: validates the
/// elements and derives the propagation constants. Throws
/// std::invalid_argument for unpropagatable elements (hyperbolic,
/// sub-surface perigee, deep-space period).
Sgp4Consts sgp4_init_consts(const Sgp4Elements& el);

/// One initialized SGP4 satellite. Construction runs the (comparatively
/// expensive) init step once; propagate() is then cheap and can be called
/// millions of times during a simulation.
class Sgp4 {
  public:
    /// Throws std::invalid_argument for unpropagatable elements
    /// (hyperbolic, sub-surface perigee, deep-space period).
    explicit Sgp4(const Sgp4Elements& el);

    /// State at `minutes_since_epoch`. Throws std::runtime_error if the
    /// propagation decays below the Earth's surface or diverges.
    StateVector propagate_minutes(double minutes_since_epoch) const;

    /// State at an absolute time.
    StateVector propagate(const JulianDate& at) const;

    const JulianDate& epoch() const { return consts_.el.epoch; }

    /// Un-Kozai'd ("Brouwer") mean motion after init, rad/min.
    double no_unkozai() const { return consts_.no_unkozai; }

    /// The full constant set, for the SoA batch builder.
    const Sgp4Consts& consts() const { return consts_; }

  private:
    Sgp4Consts consts_;
};

/// Builds SGP4 init elements from Keplerian elements (degrees/km -> TLE
/// radians/rev units), with zero drag — the paper's generated TLEs for
/// not-yet-launched satellites have no drag history to fit.
Sgp4Elements sgp4_elements_from_kepler(const KeplerianElements& kep, double bstar = 0.0);

}  // namespace hypatia::orbit
