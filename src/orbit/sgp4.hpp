// SGP4 orbital propagator (near-Earth variant), WGS72 gravity model.
//
// This is the same analytic theory (Vallado's revision of Spacetrack
// Report #3) that backs python-sgp4 and the ns-3 satellite mobility model
// the paper builds on. Only the near-Earth branch is implemented: every
// shell in Table 1 of the paper orbits below 1,325 km (period < 120 min),
// far from the 225-minute deep-space threshold.
//
// Output positions are in the TEME (true equator, mean equinox) inertial
// frame in km; rotate with orbit::teme_to_ecef for Earth-fixed work.
#pragma once

#include "src/orbit/kepler.hpp"
#include "src/orbit/time.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::orbit {

/// Initialization inputs in TLE units.
struct Sgp4Elements {
    JulianDate epoch;
    double bstar = 0.0;              // drag term, 1/earth-radii
    double inclination_rad = 0.0;
    double raan_rad = 0.0;
    double eccentricity = 0.0;
    double arg_perigee_rad = 0.0;
    double mean_anomaly_rad = 0.0;
    double mean_motion_rad_per_min = 0.0;  // Kozai mean motion (TLE field)
};

/// One initialized SGP4 satellite. Construction runs the (comparatively
/// expensive) init step once; propagate() is then cheap and can be called
/// millions of times during a simulation.
class Sgp4 {
  public:
    /// Throws std::invalid_argument for unpropagatable elements
    /// (hyperbolic, sub-surface perigee, deep-space period).
    explicit Sgp4(const Sgp4Elements& el);

    /// State at `minutes_since_epoch`. Throws std::runtime_error if the
    /// propagation decays below the Earth's surface or diverges.
    StateVector propagate_minutes(double minutes_since_epoch) const;

    /// State at an absolute time.
    StateVector propagate(const JulianDate& at) const;

    const JulianDate& epoch() const { return elements_.epoch; }

    /// Un-Kozai'd ("Brouwer") mean motion after init, rad/min.
    double no_unkozai() const { return no_unkozai_; }

  private:
    Sgp4Elements elements_;

    // Derived init-time constants (names follow the standard SGP4 code so
    // the implementation can be audited against the published theory).
    int isimp_ = 0;
    double aycof_ = 0, con41_ = 0, cc1_ = 0, cc4_ = 0, cc5_ = 0;
    double d2_ = 0, d3_ = 0, d4_ = 0, delmo_ = 0, eta_ = 0, argpdot_ = 0;
    double omgcof_ = 0, sinmao_ = 0, t2cof_ = 0, t3cof_ = 0, t4cof_ = 0, t5cof_ = 0;
    double x1mth2_ = 0, x7thm1_ = 0, mdot_ = 0, nodedot_ = 0, xlcof_ = 0;
    double xmcof_ = 0, nodecf_ = 0;
    double no_unkozai_ = 0;
};

/// Builds SGP4 init elements from Keplerian elements (degrees/km -> TLE
/// radians/rev units), with zero drag — the paper's generated TLEs for
/// not-yet-launched satellites have no drag history to fit.
Sgp4Elements sgp4_elements_from_kepler(const KeplerianElements& kep, double bstar = 0.0);

}  // namespace hypatia::orbit
