#include "src/orbit/kepler.hpp"

#include <cmath>

namespace hypatia::orbit {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kTwoPi = 2.0 * M_PI;
}  // namespace

double KeplerianElements::mean_motion_rad_per_s() const {
    const double a = semi_major_axis_km;
    return std::sqrt(Wgs72::kMuKm3PerS2 / (a * a * a));
}

double KeplerianElements::mean_motion_rev_per_day() const {
    return mean_motion_rad_per_s() * 86400.0 / kTwoPi;
}

double KeplerianElements::period_s() const { return kTwoPi / mean_motion_rad_per_s(); }

double KeplerianElements::circular_velocity_km_per_s() const {
    return std::sqrt(Wgs72::kMuKm3PerS2 / semi_major_axis_km);
}

KeplerianElements KeplerianElements::circular(double altitude_km, double inclination_deg,
                                              double raan_deg, double mean_anomaly_deg,
                                              const JulianDate& epoch) {
    KeplerianElements el;
    el.semi_major_axis_km = Wgs72::kEarthRadiusKm + altitude_km;
    el.eccentricity = 0.0;
    el.inclination_deg = inclination_deg;
    el.raan_deg = raan_deg;
    el.arg_perigee_deg = 0.0;
    el.mean_anomaly_deg = mean_anomaly_deg;
    el.epoch = epoch;
    return el;
}

double solve_kepler_equation(double mean_anomaly_rad, double eccentricity) {
    double m = std::fmod(mean_anomaly_rad, kTwoPi);
    if (m < 0.0) m += kTwoPi;
    double e_anom = eccentricity < 0.8 ? m : M_PI;
    for (int i = 0; i < 50; ++i) {
        const double f = e_anom - eccentricity * std::sin(e_anom) - m;
        const double fp = 1.0 - eccentricity * std::cos(e_anom);
        const double delta = f / fp;
        e_anom -= delta;
        if (std::abs(delta) < 1e-13) break;
    }
    return e_anom;
}

StateVector propagate_kepler_j2(const KeplerianElements& el, const JulianDate& at) {
    const double dt = at.seconds_since(el.epoch);
    const double n = el.mean_motion_rad_per_s();
    const double a = el.semi_major_axis_km;
    const double e = el.eccentricity;
    const double inc = el.inclination_deg * kDegToRad;
    const double cos_i = std::cos(inc);
    const double p = a * (1.0 - e * e);
    const double re_over_p = Wgs72::kEarthRadiusKm / p;

    // First-order J2 secular rates (Vallado 9.38-9.40).
    const double j2_factor = 1.5 * Wgs72::kJ2 * re_over_p * re_over_p * n;
    const double raan_dot = -j2_factor * cos_i;
    const double argp_dot = j2_factor * (2.0 - 2.5 * std::sin(inc) * std::sin(inc));
    const double m_dot =
        n + j2_factor * std::sqrt(1.0 - e * e) * (1.0 - 1.5 * std::sin(inc) * std::sin(inc));

    const double raan = el.raan_deg * kDegToRad + raan_dot * dt;
    const double argp = el.arg_perigee_deg * kDegToRad + argp_dot * dt;
    const double m = el.mean_anomaly_deg * kDegToRad + m_dot * dt;

    const double e_anom = solve_kepler_equation(m, e);
    const double cos_e = std::cos(e_anom);
    const double sin_e = std::sin(e_anom);
    const double r = a * (1.0 - e * cos_e);

    // Perifocal position and velocity.
    const double sqrt_1me2 = std::sqrt(1.0 - e * e);
    const double xp = a * (cos_e - e);
    const double yp = a * sqrt_1me2 * sin_e;
    const double rdot_coeff = std::sqrt(Wgs72::kMuKm3PerS2 * a) / r;
    const double vxp = -rdot_coeff * sin_e;
    const double vyp = rdot_coeff * sqrt_1me2 * cos_e;

    // Rotate perifocal -> inertial: Rz(-raan) Rx(-i) Rz(-argp).
    const double cr = std::cos(raan), sr = std::sin(raan);
    const double ci = std::cos(inc), si = std::sin(inc);
    const double cw = std::cos(argp), sw = std::sin(argp);

    const double r11 = cr * cw - sr * sw * ci;
    const double r12 = -cr * sw - sr * cw * ci;
    const double r21 = sr * cw + cr * sw * ci;
    const double r22 = -sr * sw + cr * cw * ci;
    const double r31 = sw * si;
    const double r32 = cw * si;

    StateVector sv;
    sv.position_km = {r11 * xp + r12 * yp, r21 * xp + r22 * yp, r31 * xp + r32 * yp};
    sv.velocity_km_per_s = {r11 * vxp + r12 * vyp, r21 * vxp + r22 * vyp,
                            r31 * vxp + r32 * vyp};
    return sv;
}

}  // namespace hypatia::orbit
