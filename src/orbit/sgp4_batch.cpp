#include "src/orbit/sgp4_batch.hpp"

#include <cstdlib>
#include <cstring>

#include "src/orbit/coords.hpp"
#include "src/orbit/sgp4_core.hpp"

namespace hypatia::orbit {

const char* sgp4_kernel_name(Sgp4Kernel kernel) {
    switch (kernel) {
        case Sgp4Kernel::kScalar: return "scalar";
        case Sgp4Kernel::kBatch: return "batch";
        case Sgp4Kernel::kSimd: return "simd";
    }
    return "scalar";
}

Sgp4Kernel sgp4_kernel_from_env() {
    const char* env = std::getenv("HYPATIA_SGP4_KERNEL");
    if (env == nullptr || *env == '\0') return Sgp4Kernel::kScalar;
    if (std::strcmp(env, "batch") == 0) return Sgp4Kernel::kBatch;
    if (std::strcmp(env, "simd") == 0) return Sgp4Kernel::kSimd;
    return Sgp4Kernel::kScalar;
}

bool sgp4_simd_available() {
#if defined(HYPATIA_SGP4_SIMD_AVX2)
    // The SIMD TU carries AVX2 instructions; gate on the running CPU.
    return __builtin_cpu_supports("avx2") != 0;
#else
    // NEON (baseline on aarch64) or the generic 4-lane fallback: always
    // runnable.
    return true;
#endif
}

namespace {

/// Scalar zero-drag fast path reading the SoA columns: the expressions
/// and evaluation order of sgp4_propagate_fast<false>, fed column
/// values (bit-equal to the AoS fields they were copied from), so the
/// positions are bit-identical. Touching ~136 contiguous bytes per
/// satellite instead of the ~280-byte Sgp4Consts stride is what lets
/// the batch kernel beat the per-satellite reference on cache traffic.
inline Sgp4Status fast_pos_from_view(const batch_detail::FastView& v, std::size_t i,
                                     double t, Vec3& out_pos) {
    using namespace sgp4_detail;
    const double xmdf = v.mean_anomaly[i] + v.mdot[i] * t;
    const double argpdf = v.argp[i] + v.argpdot[i] * t;
    const double nodedf = v.raan[i] + v.nodedot[i] * t;

    const double nodem = wrap_two_pi(nodedf);
    const double argpm = wrap_two_pi(argpdf);
    const double xlm = wrap_two_pi(xmdf + argpdf + nodedf);
    const double mm = wrap_two_pi(xlm - argpm - nodem);

    double sin_argpm, cos_argpm;
    sincos_pair(argpm, sin_argpm, cos_argpm);
    const double axnl = v.em[i] * cos_argpm;
    const double aynl = v.em[i] * sin_argpm + v.aycof_t[i];
    const double xl = mm + argpm + nodem + v.xlcof_t[i] * axnl;

    StateVector sv;
    const Sgp4Status st = sgp4_finish_core<false>(
        v.con41[i], v.x1mth2[i], v.x7thm1[i], v.nm[i], v.am[i], v.sinim[i],
        v.cosim[i], axnl, aynl, xl, nodem, v.inclo[i], sv);
    out_pos = sv.position_km;
    return st;
}

/// Four satellites at once through the position-only zero-drag fast
/// path, written as fixed-width lane loops in plain C++ (no intrinsics
/// — this is the kBatch kernel's autovectorizable form). Two effects
/// make it faster than four fast_pos_from_view calls: the compiler can
/// pack the lane arithmetic (same per-lane IEEE operations, so same
/// bits), and the four libm dependency chains — Kepler's sincos
/// iteration especially — overlap in the out-of-order window instead
/// of running end to end. Expression text and evaluation order per
/// lane mirror sgp4_finish_core; the Kepler iteration freezes
/// converged lanes exactly like the SIMD kernel's masking, so each
/// lane runs the same iteration count (and produces the same bits) as
/// the scalar loop.
inline void fast_pos4_from_view(const batch_detail::FastView& v,
                                const double* minutes, std::size_t i0,
                                Vec3* out_pos, Sgp4Status* status) {
    using namespace sgp4_detail;

    double nodem[4], argpm[4], mm[4];
    for (int l = 0; l < 4; ++l) {
        const std::size_t i = i0 + static_cast<std::size_t>(l);
        const double t = minutes[l];
        const double xmdf = v.mean_anomaly[i] + v.mdot[i] * t;
        const double argpdf = v.argp[i] + v.argpdot[i] * t;
        const double nodedf = v.raan[i] + v.nodedot[i] * t;
        nodem[l] = wrap_two_pi(nodedf);
        argpm[l] = wrap_two_pi(argpdf);
        const double xlm = wrap_two_pi(xmdf + argpdf + nodedf);
        mm[l] = wrap_two_pi(xlm - argpm[l] - nodem[l]);
    }

    double sin_argpm[4], cos_argpm[4];
    for (int l = 0; l < 4; ++l) sincos_pair(argpm[l], sin_argpm[l], cos_argpm[l]);

    double axnl[4], aynl[4], u[4];
    for (int l = 0; l < 4; ++l) {
        const std::size_t i = i0 + static_cast<std::size_t>(l);
        axnl[l] = v.em[i] * cos_argpm[l];
        aynl[l] = v.em[i] * sin_argpm[l] + v.aycof_t[i];
        const double xl = mm[l] + argpm[l] + nodem[l] + v.xlcof_t[i] * axnl[l];
        u[l] = wrap_two_pi(xl - nodem[l]);
    }

    // ---- Kepler's equation, frozen-lane iteration ----
    double eo1[4], sineo1[4] = {0.0, 0.0, 0.0, 0.0}, coseo1[4] = {0.0, 0.0, 0.0, 0.0};
    bool active[4] = {true, true, true, true};
    for (int l = 0; l < 4; ++l) eo1[l] = u[l];
    for (int ktr = 1;
         ktr <= 10 && (active[0] || active[1] || active[2] || active[3]); ++ktr) {
        for (int l = 0; l < 4; ++l) {
            if (!active[l]) continue;
            sincos_pair(eo1[l], sineo1[l], coseo1[l]);
            double tem5 = 1.0 - coseo1[l] * axnl[l] - sineo1[l] * aynl[l];
            tem5 = (u[l] - aynl[l] * coseo1[l] + axnl[l] * sineo1[l] - eo1[l]) / tem5;
            if (std::abs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
            eo1[l] += tem5;
            if (std::abs(tem5) < 1.0e-12) active[l] = false;
        }
    }

    // ---- short-period periodics ----
    double sinu[4], cosu[4], sin2u[4], cos2u[4];
    double rl_[4], betal_[4], pl_[4];
    bool pl_bad[4];
    for (int l = 0; l < 4; ++l) {
        const std::size_t i = i0 + static_cast<std::size_t>(l);
        const double am = v.am[i];
        const double ecose = axnl[l] * coseo1[l] + aynl[l] * sineo1[l];
        const double esine = axnl[l] * sineo1[l] - aynl[l] * coseo1[l];
        const double el2 = axnl[l] * axnl[l] + aynl[l] * aynl[l];
        const double pl = am * (1.0 - el2);
        pl_bad[l] = pl < 0.0;
        const double rl = am * (1.0 - ecose);
        const double betal = std::sqrt(1.0 - el2);
        const double temp = esine / (1.0 + betal);
        sinu[l] = am / rl * (sineo1[l] - aynl[l] - axnl[l] * temp);
        cosu[l] = am / rl * (coseo1[l] - axnl[l] + aynl[l] * temp);
        sin2u[l] = (cosu[l] + cosu[l]) * sinu[l];
        cos2u[l] = 1.0 - 2.0 * sinu[l] * sinu[l];
        rl_[l] = rl;
        betal_[l] = betal;
        pl_[l] = pl;
    }

    double su[4];
    for (int l = 0; l < 4; ++l) su[l] = std::atan2(sinu[l], cosu[l]);

    double mrt[4], xnode[4], xinc[4];
    for (int l = 0; l < 4; ++l) {
        const std::size_t i = i0 + static_cast<std::size_t>(l);
        const double temp = 1.0 / pl_[l];
        const double temp1 = 0.5 * kJ2 * temp;
        const double temp2 = temp1 * temp;
        mrt[l] = rl_[l] * (1.0 - 1.5 * temp2 * betal_[l] * v.con41[i]) +
                 0.5 * temp1 * v.x1mth2[i] * cos2u[l];
        su[l] -= 0.25 * temp2 * v.x7thm1[i] * sin2u[l];
        xnode[l] = nodem[l] + 1.5 * temp2 * v.cosim[i] * sin2u[l];
        xinc[l] = v.inclo[i] + 1.5 * temp2 * v.cosim[i] * v.sinim[i] * cos2u[l];
    }

    // ---- orientation vectors and final positions ----
    double sinsu[4], cossu[4], snod[4], cnod[4], sini[4], cosi[4];
    for (int l = 0; l < 4; ++l) sincos_pair(su[l], sinsu[l], cossu[l]);
    for (int l = 0; l < 4; ++l) sincos_pair(xnode[l], snod[l], cnod[l]);
    for (int l = 0; l < 4; ++l) sincos_pair(xinc[l], sini[l], cosi[l]);
    for (int l = 0; l < 4; ++l) {
        const double xmx = -snod[l] * cosi[l];
        const double xmy = cnod[l] * cosi[l];
        const double ux = xmx * sinsu[l] + cnod[l] * cossu[l];
        const double uy = xmy * sinsu[l] + snod[l] * cossu[l];
        const double uz = sini[l] * sinsu[l];
        // Same failure precedence as the scalar kernel; out entries are
        // meaningful only where the status is kOk, as everywhere else.
        status[l] = pl_bad[l] ? Sgp4Status::kNegativeSemiLatus
                  : mrt[l] < 1.0 ? Sgp4Status::kDecayed
                                 : Sgp4Status::kOk;
        out_pos[l] = {mrt[l] * kRe * ux, mrt[l] * kRe * uy, mrt[l] * kRe * uz};
    }
}

}  // namespace

void Sgp4Batch::reserve(std::size_t n) {
    consts_.reserve(n);
    fast_.reserve(n);
    zero_drag_.reserve(n);
    for (auto* col : {&epoch_day_, &epoch_frac_, &mean_anomaly_, &argp_, &raan_,
                      &mdot_, &argpdot_, &nodedot_, &am_, &nm_, &em_, &sinim_,
                      &cosim_, &aycof_t_, &xlcof_t_, &con41_, &x1mth2_, &x7thm1_,
                      &inclo_}) {
        col->reserve(n);
    }
}

std::size_t Sgp4Batch::add(const Sgp4Consts& consts) {
    const std::size_t i = consts_.size();
    consts_.push_back(consts);
    const Sgp4FastConsts f = sgp4_fast_consts(consts);
    fast_.push_back(f);
    const bool zd = sgp4_zero_drag(consts);
    zero_drag_.push_back(zd ? 1 : 0);
    if (!zd) ++num_drag_;

    epoch_day_.push_back(consts.el.epoch.day);
    epoch_frac_.push_back(consts.el.epoch.frac);
    mean_anomaly_.push_back(consts.el.mean_anomaly_rad);
    argp_.push_back(consts.el.arg_perigee_rad);
    raan_.push_back(consts.el.raan_rad);
    mdot_.push_back(consts.mdot);
    argpdot_.push_back(consts.argpdot);
    nodedot_.push_back(consts.nodedot);
    am_.push_back(f.am);
    nm_.push_back(f.nm);
    em_.push_back(f.em);
    sinim_.push_back(f.sinim);
    cosim_.push_back(f.cosim);
    aycof_t_.push_back(f.aycof_t);
    xlcof_t_.push_back(f.xlcof_t);
    con41_.push_back(consts.con41);
    x1mth2_.push_back(consts.x1mth2);
    x7thm1_.push_back(consts.x7thm1);
    inclo_.push_back(consts.el.inclination_rad);
    return i;
}

batch_detail::FastView Sgp4Batch::fast_view() const {
    return {mean_anomaly_.data(), argp_.data(),    raan_.data(),    mdot_.data(),
            argpdot_.data(),      nodedot_.data(), am_.data(),      nm_.data(),
            em_.data(),           sinim_.data(),   cosim_.data(),   aycof_t_.data(),
            xlcof_t_.data(),      con41_.data(),   x1mth2_.data(),  x7thm1_.data(),
            inclo_.data()};
}

Sgp4Status Sgp4Batch::propagate_one(std::size_t i, double minutes,
                                    StateVector& out) const {
    if (zero_drag_[i]) return sgp4_propagate_fast(consts_[i], fast_[i], minutes, out);
    return sgp4_propagate_core(consts_[i], minutes, out);
}

Sgp4Status Sgp4Batch::propagate_one_pos(std::size_t i, double minutes,
                                        Vec3& out_pos) const {
    StateVector sv;
    const Sgp4Status st =
        zero_drag_[i] ? sgp4_propagate_fast<false>(consts_[i], fast_[i], minutes, sv)
                      : sgp4_propagate_core(consts_[i], minutes, sv);
    out_pos = sv.position_km;
    return st;
}

void Sgp4Batch::propagate_teme(Sgp4Kernel kernel, const JulianDate& at,
                               std::size_t begin, std::size_t end, StateVector* out,
                               Sgp4Status* status) const {
    const std::size_t n = end - begin;

    // Per-satellite minutes since TLE epoch, via the same two-step
    // JulianDate arithmetic as seconds_since()/60.0 (day/frac split
    // summed first, one multiply, one divide) so the offsets are
    // bit-identical to the scalar Sgp4::propagate path.
    constexpr std::size_t kBlock = 256;
    double minutes[kBlock];
    for (std::size_t b = 0; b < n; b += kBlock) {
        const std::size_t e = b + kBlock < n ? b + kBlock : n;
        const std::size_t m = e - b;
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t i = begin + b + j;
            minutes[j] =
                ((at.day - epoch_day_[i]) + (at.frac - epoch_frac_[i])) * 86400.0 / 60.0;
        }

        if (kernel == Sgp4Kernel::kScalar) {
            for (std::size_t j = 0; j < m; ++j) {
                status[b + j] =
                    sgp4_propagate_core(consts_[begin + b + j], minutes[j], out[b + j]);
            }
            continue;
        }

        const bool simd = kernel == Sgp4Kernel::kSimd && sgp4_simd_available();
        std::size_t j = 0;
        while (j < m) {
            if (simd && zero_drag_[begin + b + j]) {
                // Maximal run of zero-drag satellites: vector blocks of
                // 4, per-satellite fast path for the tail.
                std::size_t r = j;
                while (r < m && zero_drag_[begin + b + r]) ++r;
                const std::size_t vec_end = j + ((r - j) & ~std::size_t{3});
                if (vec_end > j) {
                    batch_detail::propagate_fast_simd(fast_view(), minutes + j,
                                                      begin + b + j, begin + b + vec_end,
                                                      out + b + j, status + b + j);
                }
                for (std::size_t k = vec_end; k < r; ++k) {
                    status[b + k] = propagate_one(begin + b + k, minutes[k], out[b + k]);
                }
                j = r;
            } else {
                status[b + j] = propagate_one(begin + b + j, minutes[j], out[b + j]);
                ++j;
            }
        }
    }
}

void Sgp4Batch::propagate_ecef(Sgp4Kernel kernel, const JulianDate& at,
                               std::size_t begin, std::size_t end, Vec3* out_ecef,
                               Sgp4Status* status) const {
    // One GMST evaluation per call: `at` is shared by the whole range,
    // so theta and its sin/cos are loop invariants. teme_to_ecef
    // recomputes them per satellite from the same JulianDate — same
    // values, so the hoist is bit-exact.
    const double theta = gmst_radians(at);
    double s, c;
    sgp4_detail::sincos_pair(theta, s, c);

    // Positions only: this is the cache-warming path and the cache
    // stores positions, so the batch/simd kernels run the
    // position-only kernel variants (identical position bits, velocity
    // arithmetic skipped). The scalar kernel keeps the full reference
    // core — it IS the definition the others are compared against.
    constexpr std::size_t kBlock = 256;
    double minutes[kBlock];
    Vec3 pos[kBlock];
    const std::size_t n = end - begin;
    for (std::size_t b = 0; b < n; b += kBlock) {
        const std::size_t e = b + kBlock < n ? b + kBlock : n;
        const std::size_t m = e - b;
        for (std::size_t j = 0; j < m; ++j) {
            const std::size_t i = begin + b + j;
            minutes[j] =
                ((at.day - epoch_day_[i]) + (at.frac - epoch_frac_[i])) * 86400.0 / 60.0;
        }

        if (kernel == Sgp4Kernel::kScalar) {
            for (std::size_t j = 0; j < m; ++j) {
                StateVector sv;
                status[b + j] = sgp4_propagate_core(consts_[begin + b + j], minutes[j], sv);
                pos[j] = sv.position_km;
            }
        } else {
            const batch_detail::FastView v = fast_view();
            const bool simd = kernel == Sgp4Kernel::kSimd && sgp4_simd_available();
            std::size_t j = 0;
            while (j < m) {
                const std::size_t i = begin + b + j;
                if (zero_drag_[i]) {
                    // Maximal run of zero-drag satellites: blocks of 4
                    // through the lane kernels (vector for kSimd, the
                    // autovectorizable plain-C++ lanes for kBatch),
                    // per-satellite fast path for the tail.
                    std::size_t r = j;
                    while (r < m && zero_drag_[begin + b + r]) ++r;
                    const std::size_t vec_end = j + ((r - j) & ~std::size_t{3});
                    if (simd && vec_end > j) {
                        batch_detail::propagate_fast_simd_pos(
                            v, minutes + j, begin + b + j,
                            begin + b + vec_end, pos + j, status + b + j);
                    } else {
                        for (std::size_t k = j; k < vec_end; k += 4) {
                            fast_pos4_from_view(v, minutes + k, begin + b + k,
                                                pos + k, status + b + k);
                        }
                    }
                    for (std::size_t k = vec_end; k < r; ++k) {
                        status[b + k] =
                            fast_pos_from_view(v, begin + b + k, minutes[k], pos[k]);
                    }
                    j = r;
                } else {
                    status[b + j] = propagate_one_pos(i, minutes[j], pos[j]);
                    ++j;
                }
            }
        }

        for (std::size_t j = 0; j < m; ++j) {
            const Vec3& p = pos[j];
            // ECEF = Rz(gmst) * TEME, the exact expression teme_to_ecef uses.
            out_ecef[b + j] = {c * p.x + s * p.y, -s * p.x + c * p.y, p.z};
        }
    }
}

}  // namespace hypatia::orbit
