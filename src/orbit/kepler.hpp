// Keplerian orbital elements and an analytic two-body propagator with J2
// secular corrections. This is (a) the input format of the FCC/ITU filings
// the paper works from (Table 1), and (b) an independent validation
// reference for the SGP4 propagator.
#pragma once

#include "src/orbit/coords.hpp"
#include "src/orbit/time.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::orbit {

/// Classical Keplerian elements. Angles in degrees (filing convention),
/// semi-major axis in km. All upcoming mega-constellation filings use
/// circular orbits, but eccentricity is supported throughout.
struct KeplerianElements {
    double semi_major_axis_km = 0.0;
    double eccentricity = 0.0;
    double inclination_deg = 0.0;
    double raan_deg = 0.0;            // right ascension of ascending node
    double arg_perigee_deg = 0.0;     // argument of perigee
    double mean_anomaly_deg = 0.0;    // at epoch
    JulianDate epoch;

    /// Mean motion in radians per second: sqrt(mu / a^3).
    double mean_motion_rad_per_s() const;
    /// Mean motion in revolutions per day (the TLE unit).
    double mean_motion_rev_per_day() const;
    /// Orbital period in seconds.
    double period_s() const;
    /// Circular orbital velocity in km/s (exact for e = 0).
    double circular_velocity_km_per_s() const;

    /// Convenience: elements of a circular orbit at `altitude_km` above the
    /// WGS72 equatorial radius.
    static KeplerianElements circular(double altitude_km, double inclination_deg,
                                      double raan_deg, double mean_anomaly_deg,
                                      const JulianDate& epoch);
};

/// Position and velocity in an inertial frame (TEME-compatible for our
/// purposes), km and km/s.
struct StateVector {
    Vec3 position_km;
    Vec3 velocity_km_per_s;
};

/// Analytic two-body propagation with first-order J2 secular rates on
/// RAAN, argument of perigee, and mean anomaly. Solves Kepler's equation
/// by Newton iteration for the eccentric case.
///
/// This is not SGP4 (no periodic terms, no drag), but for near-circular
/// LEO over a few hours it matches SGP4 to within a few kilometres, which
/// is what the validation tests assert.
StateVector propagate_kepler_j2(const KeplerianElements& el, const JulianDate& at);

/// Solves Kepler's equation M = E - e*sin(E) for E (radians).
double solve_kepler_equation(double mean_anomaly_rad, double eccentricity);

}  // namespace hypatia::orbit
