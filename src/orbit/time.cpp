#include "src/orbit/time.hpp"

#include <cmath>

namespace hypatia::orbit {

namespace {
constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kSecondsPerDay = 86400.0;
}  // namespace

JulianDate JulianDate::plus_seconds(double seconds) const {
    JulianDate out = *this;
    out.frac += seconds / kSecondsPerDay;
    const double whole = std::floor(out.frac);
    out.day += whole;
    out.frac -= whole;
    return out;
}

double JulianDate::seconds_since(const JulianDate& other) const {
    return ((day - other.day) + (frac - other.frac)) * kSecondsPerDay;
}

JulianDate julian_date_from_utc(int year, int month, int day, int hour, int minute,
                                double second) {
    // Standard algorithm (Vallado, "Fundamentals of Astrodynamics", Alg. 14).
    const double jd_day =
        367.0 * year - std::floor(7.0 * (year + std::floor((month + 9.0) / 12.0)) * 0.25) +
        std::floor(275.0 * month / 9.0) + day + 1721013.5;
    const double day_frac = (second + minute * 60.0 + hour * 3600.0) / kSecondsPerDay;
    JulianDate jd{jd_day, day_frac};
    const double whole = std::floor(jd.frac);
    jd.day += whole;
    jd.frac -= whole;
    return jd;
}

double gmst_radians(const JulianDate& jd) {
    // IAU-82 GMST (Vallado Alg. 15), evaluated with the split representation
    // to preserve precision: centuries from J2000 of the 0h part plus the
    // intra-day rotation term.
    const double t_ut1 = (jd.total() - kJ2000) / 36525.0;
    double gmst_sec = 67310.54841 +
                      (876600.0 * 3600.0 + 8640184.812866) * t_ut1 +
                      0.093104 * t_ut1 * t_ut1 - 6.2e-6 * t_ut1 * t_ut1 * t_ut1;
    gmst_sec = std::fmod(gmst_sec, kSecondsPerDay);
    double gmst = gmst_sec / 240.0 * M_PI / 180.0;  // 240 sec of time per degree
    gmst = std::fmod(gmst, kTwoPi);
    if (gmst < 0.0) gmst += kTwoPi;
    return gmst;
}

double days_since_1949_dec_31(const JulianDate& jd) {
    // JD of 1949-12-31 00:00 UT is 2433281.5.
    return jd.total() - 2433281.5;
}

}  // namespace hypatia::orbit
