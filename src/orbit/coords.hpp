// Coordinate systems: WGS72 geodetic <-> ECEF, TEME -> ECEF rotation, and
// topocentric look angles (azimuth / elevation / range) as seen from a
// ground station. Hypatia works in WGS72 because the TLE/SGP4 stack does
// (paper section 3.1: "TLEs in the WGS72 world geodetic system standard").
#pragma once

#include "src/orbit/time.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::orbit {

/// WGS72 ellipsoid and gravity constants (the gravity model SGP4 expects).
struct Wgs72 {
    static constexpr double kEarthRadiusKm = 6378.135;       // equatorial radius
    static constexpr double kFlattening = 1.0 / 298.26;      // ellipsoid flattening
    static constexpr double kMuKm3PerS2 = 398600.8;          // GM of Earth
    static constexpr double kJ2 = 0.001082616;
    static constexpr double kJ3 = -0.00000253881;
    static constexpr double kJ4 = -0.00000165597;
};

/// Speed of light in vacuum, km/s. Link latencies are distance / c
/// (laser ISLs and radio GSLs both propagate at c in vacuum/air).
inline constexpr double kSpeedOfLightKmPerS = 299792.458;

/// Geodetic position on the WGS72 ellipsoid.
struct Geodetic {
    double latitude_deg = 0.0;
    double longitude_deg = 0.0;  // east positive, in [-180, 180]
    double altitude_km = 0.0;    // above the ellipsoid
};

/// Geodetic -> ECEF (km).
Vec3 geodetic_to_ecef(const Geodetic& g);

/// ECEF (km) -> geodetic, iterative (Bowring); converges in a few rounds.
Geodetic ecef_to_geodetic(const Vec3& ecef);

/// Rotates a TEME position into ECEF by the Earth rotation angle (GMST).
/// Polar motion is ignored (sub-20 m, irrelevant at network scale).
Vec3 teme_to_ecef(const Vec3& teme, const JulianDate& jd);

/// Topocentric view of a target from an observer, both in ECEF.
struct LookAngles {
    double azimuth_deg = 0.0;    // 0 = North, 90 = East
    double elevation_deg = 0.0;  // 0 = horizon, 90 = zenith
    double range_km = 0.0;
};

/// Computes look angles using the observer's geodetic normal as "up"
/// (the angle-of-elevation convention of the paper's Fig. 1 and Fig. 12).
LookAngles look_angles(const Geodetic& observer_geo, const Vec3& observer_ecef,
                       const Vec3& target_ecef);

/// Great-circle distance between two geodetic points at sea level, km
/// (haversine over the mean Earth radius). Used for the paper's
/// "geodesic RTT" baseline in Fig. 6.
double great_circle_distance_km(const Geodetic& a, const Geodetic& b);

/// Geodesic round-trip time at the speed of light in vacuum, seconds.
double geodesic_rtt_s(const Geodetic& a, const Geodetic& b);

}  // namespace hypatia::orbit
