// Ground stations: fixed geodetic sites with precomputed ECEF positions.
// The paper models static GSes with multiple parabolic antennas (gateway
// class), located at the world's 100 most populous cities.
#pragma once

#include <string>
#include <vector>

#include "src/orbit/coords.hpp"
#include "src/util/vec3.hpp"

namespace hypatia::orbit {

class GroundStation {
  public:
    GroundStation(int id, std::string name, const Geodetic& geodetic)
        : id_(id), name_(std::move(name)), geodetic_(geodetic),
          ecef_(geodetic_to_ecef(geodetic)) {}

    int id() const { return id_; }
    const std::string& name() const { return name_; }
    const Geodetic& geodetic() const { return geodetic_; }
    const Vec3& ecef() const { return ecef_; }

    /// Elevation angle (degrees) of a target at `target_ecef` above this
    /// station's horizon; negative if below the horizon.
    double elevation_deg_to(const Vec3& target_ecef) const {
        return look_angles(geodetic_, ecef_, target_ecef).elevation_deg;
    }

  private:
    int id_;
    std::string name_;
    Geodetic geodetic_;
    Vec3 ecef_;
};

}  // namespace hypatia::orbit
