#include "src/orbit/sgp4.hpp"

#include <cmath>
#include <stdexcept>

#include "src/orbit/sgp4_core.hpp"

namespace hypatia::orbit {

namespace {

constexpr double kDegToRad = M_PI / 180.0;

}  // namespace

const char* sgp4_status_message(Sgp4Status status) {
    switch (status) {
        case Sgp4Status::kOk:
            return "sgp4: ok";
        case Sgp4Status::kEccentricityDiverged:
            return "sgp4: eccentricity diverged";
        case Sgp4Status::kSemiMajorDecayed:
            return "sgp4: semi-major axis decayed";
        case Sgp4Status::kNegativeSemiLatus:
            return "sgp4: semi-latus rectum negative";
        case Sgp4Status::kDecayed:
            return "sgp4: satellite decayed below the surface";
    }
    return "sgp4: unknown status";
}

Sgp4Consts sgp4_init_consts(const Sgp4Elements& el) {
    using namespace sgp4_detail;
    Sgp4Consts k;
    k.el = el;

    const double ecco = el.eccentricity;
    const double inclo = el.inclination_rad;
    const double no_kozai = el.mean_motion_rad_per_min;

    if (no_kozai <= 0.0) throw std::invalid_argument("sgp4: non-positive mean motion");
    if (ecco < 0.0 || ecco >= 1.0) throw std::invalid_argument("sgp4: eccentricity out of [0,1)");
    if (kTwoPi / no_kozai >= 225.0) {
        throw std::invalid_argument("sgp4: deep-space orbit (period >= 225 min) unsupported");
    }

    const double x2o3 = 2.0 / 3.0;
    const double ss = 78.0 / kRe + 1.0;
    const double qzms2t = std::pow((120.0 - 78.0) / kRe, 4.0);

    // ---- initl: recover the un-Kozai'd mean motion and geometry ----
    const double eccsq = ecco * ecco;
    const double omeosq = 1.0 - eccsq;
    const double rteosq = std::sqrt(omeosq);
    const double cosio = std::cos(inclo);
    const double cosio2 = cosio * cosio;

    const double ak = std::pow(kXke / no_kozai, x2o3);
    const double d1 = 0.75 * kJ2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
    double del = d1 / (ak * ak);
    const double adel =
        ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del * del / 81.0));
    del = d1 / (adel * adel);
    k.no_unkozai = no_kozai / (1.0 + del);

    const double ao = std::pow(kXke / k.no_unkozai, x2o3);
    const double sinio = std::sin(inclo);
    const double po = ao * omeosq;
    const double con42 = 1.0 - 5.0 * cosio2;
    k.con41 = -con42 - cosio2 - cosio2;
    const double posq = po * po;
    const double rp = ao * (1.0 - ecco);

    if (rp < 1.0) throw std::invalid_argument("sgp4: perigee below the Earth's surface");

    // ---- sgp4init proper ----
    k.isimp = (rp < 220.0 / kRe + 1.0) ? 1 : 0;
    double sfour = ss;
    double qzms24 = qzms2t;
    const double perige = (rp - 1.0) * kRe;
    if (perige < 156.0) {
        sfour = perige - 78.0;
        if (perige < 98.0) sfour = 20.0;
        qzms24 = std::pow((120.0 - sfour) / kRe, 4.0);
        sfour = sfour / kRe + 1.0;
    }
    const double pinvsq = 1.0 / posq;

    const double tsi = 1.0 / (ao - sfour);
    k.eta = ao * ecco * tsi;
    const double etasq = k.eta * k.eta;
    const double eeta = ecco * k.eta;
    const double psisq = std::abs(1.0 - etasq);
    const double coef = qzms24 * std::pow(tsi, 4.0);
    const double coef1 = coef / std::pow(psisq, 3.5);
    const double cc2 =
        coef1 * k.no_unkozai *
        (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
         0.375 * kJ2 * tsi / psisq * k.con41 * (8.0 + 3.0 * etasq * (8.0 + etasq)));
    k.cc1 = el.bstar * cc2;
    double cc3 = 0.0;
    if (ecco > 1.0e-4) {
        cc3 = -2.0 * coef * tsi * kJ3oJ2 * k.no_unkozai * sinio / ecco;
    }
    k.x1mth2 = 1.0 - cosio2;
    k.cc4 = 2.0 * k.no_unkozai * coef1 * ao * omeosq *
            (k.eta * (2.0 + 0.5 * etasq) + ecco * (0.5 + 2.0 * etasq) -
             kJ2 * tsi / (ao * psisq) *
                 (-3.0 * k.con41 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
                  0.75 * k.x1mth2 * (2.0 * etasq - eeta * (1.0 + etasq)) *
                      std::cos(2.0 * el.arg_perigee_rad)));
    k.cc5 = 2.0 * coef1 * ao * omeosq * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);
    const double cosio4 = cosio2 * cosio2;
    const double temp1 = 1.5 * kJ2 * pinvsq * k.no_unkozai;
    const double temp2 = 0.5 * temp1 * kJ2 * pinvsq;
    const double temp3 = -0.46875 * kJ4 * pinvsq * pinvsq * k.no_unkozai;
    k.mdot = k.no_unkozai + 0.5 * temp1 * rteosq * k.con41 +
             0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
    k.argpdot = -0.5 * temp1 * con42 +
                0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
                temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
    const double xhdot1 = -temp1 * cosio;
    k.nodedot = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                          2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                             cosio;
    k.omgcof = el.bstar * cc3 * std::cos(el.arg_perigee_rad);
    k.xmcof = 0.0;
    if (ecco > 1.0e-4) k.xmcof = -x2o3 * coef * el.bstar / eeta;
    k.nodecf = 3.5 * omeosq * xhdot1 * k.cc1;
    k.t2cof = 1.5 * k.cc1;
    // Avoid division by zero for inclination = 180 deg.
    if (std::abs(cosio + 1.0) > 1.5e-12) {
        k.xlcof = -0.25 * kJ3oJ2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
    } else {
        k.xlcof = -0.25 * kJ3oJ2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12;
    }
    k.aycof = -0.5 * kJ3oJ2 * sinio;
    k.delmo = std::pow(1.0 + k.eta * std::cos(el.mean_anomaly_rad), 3.0);
    k.sinmao = std::sin(el.mean_anomaly_rad);
    k.x7thm1 = 7.0 * cosio2 - 1.0;

    if (k.isimp != 1) {
        const double cc1sq = k.cc1 * k.cc1;
        k.d2 = 4.0 * ao * tsi * cc1sq;
        const double temp = k.d2 * tsi * k.cc1 / 3.0;
        k.d3 = (17.0 * ao + sfour) * temp;
        k.d4 = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * k.cc1;
        k.t3cof = k.d2 + 2.0 * cc1sq;
        k.t4cof = 0.25 * (3.0 * k.d3 + k.cc1 * (12.0 * k.d2 + 10.0 * cc1sq));
        k.t5cof = 0.2 * (3.0 * k.d4 + 12.0 * k.cc1 * k.d3 + 6.0 * k.d2 * k.d2 +
                         15.0 * cc1sq * (2.0 * k.d2 + cc1sq));
    }
    return k;
}

Sgp4::Sgp4(const Sgp4Elements& el) : consts_(sgp4_init_consts(el)) {}

StateVector Sgp4::propagate_minutes(double t) const {
    StateVector sv;
    const Sgp4Status st = sgp4_propagate_core(consts_, t, sv);
    if (st != Sgp4Status::kOk) throw std::runtime_error(sgp4_status_message(st));
    return sv;
}

StateVector Sgp4::propagate(const JulianDate& at) const {
    return propagate_minutes(at.seconds_since(consts_.el.epoch) / 60.0);
}

Sgp4Elements sgp4_elements_from_kepler(const KeplerianElements& kep, double bstar) {
    Sgp4Elements el;
    el.epoch = kep.epoch;
    el.bstar = bstar;
    el.inclination_rad = kep.inclination_deg * kDegToRad;
    el.raan_rad = kep.raan_deg * kDegToRad;
    el.eccentricity = kep.eccentricity;
    el.arg_perigee_rad = kep.arg_perigee_deg * kDegToRad;
    el.mean_anomaly_rad = kep.mean_anomaly_deg * kDegToRad;
    el.mean_motion_rad_per_min = kep.mean_motion_rad_per_s() * 60.0;
    return el;
}

}  // namespace hypatia::orbit
