#include "src/orbit/sgp4.hpp"

#include <cmath>
#include <stdexcept>

namespace hypatia::orbit {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kDegToRad = M_PI / 180.0;

// WGS72 gravity constants in SGP4's canonical units.
const double kRe = Wgs72::kEarthRadiusKm;
const double kXke = 60.0 / std::sqrt(kRe * kRe * kRe / Wgs72::kMuKm3PerS2);
const double kJ2 = Wgs72::kJ2;
const double kJ3 = Wgs72::kJ3;
const double kJ4 = Wgs72::kJ4;
const double kJ3oJ2 = kJ3 / kJ2;

double wrap_two_pi(double x) {
    x = std::fmod(x, kTwoPi);
    if (x < 0.0) x += kTwoPi;
    return x;
}

}  // namespace

Sgp4::Sgp4(const Sgp4Elements& el) : elements_(el) {
    const double ecco = el.eccentricity;
    const double inclo = el.inclination_rad;
    const double no_kozai = el.mean_motion_rad_per_min;

    if (no_kozai <= 0.0) throw std::invalid_argument("sgp4: non-positive mean motion");
    if (ecco < 0.0 || ecco >= 1.0) throw std::invalid_argument("sgp4: eccentricity out of [0,1)");
    if (kTwoPi / no_kozai >= 225.0) {
        throw std::invalid_argument("sgp4: deep-space orbit (period >= 225 min) unsupported");
    }

    const double x2o3 = 2.0 / 3.0;
    const double ss = 78.0 / kRe + 1.0;
    const double qzms2t = std::pow((120.0 - 78.0) / kRe, 4.0);

    // ---- initl: recover the un-Kozai'd mean motion and geometry ----
    const double eccsq = ecco * ecco;
    const double omeosq = 1.0 - eccsq;
    const double rteosq = std::sqrt(omeosq);
    const double cosio = std::cos(inclo);
    const double cosio2 = cosio * cosio;

    const double ak = std::pow(kXke / no_kozai, x2o3);
    const double d1 = 0.75 * kJ2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq);
    double del = d1 / (ak * ak);
    const double adel =
        ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del * del / 81.0));
    del = d1 / (adel * adel);
    no_unkozai_ = no_kozai / (1.0 + del);

    const double ao = std::pow(kXke / no_unkozai_, x2o3);
    const double sinio = std::sin(inclo);
    const double po = ao * omeosq;
    const double con42 = 1.0 - 5.0 * cosio2;
    con41_ = -con42 - cosio2 - cosio2;
    const double posq = po * po;
    const double rp = ao * (1.0 - ecco);

    if (rp < 1.0) throw std::invalid_argument("sgp4: perigee below the Earth's surface");

    // ---- sgp4init proper ----
    isimp_ = (rp < 220.0 / kRe + 1.0) ? 1 : 0;
    double sfour = ss;
    double qzms24 = qzms2t;
    const double perige = (rp - 1.0) * kRe;
    if (perige < 156.0) {
        sfour = perige - 78.0;
        if (perige < 98.0) sfour = 20.0;
        qzms24 = std::pow((120.0 - sfour) / kRe, 4.0);
        sfour = sfour / kRe + 1.0;
    }
    const double pinvsq = 1.0 / posq;

    const double tsi = 1.0 / (ao - sfour);
    eta_ = ao * ecco * tsi;
    const double etasq = eta_ * eta_;
    const double eeta = ecco * eta_;
    const double psisq = std::abs(1.0 - etasq);
    const double coef = qzms24 * std::pow(tsi, 4.0);
    const double coef1 = coef / std::pow(psisq, 3.5);
    const double cc2 =
        coef1 * no_unkozai_ *
        (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
         0.375 * kJ2 * tsi / psisq * con41_ * (8.0 + 3.0 * etasq * (8.0 + etasq)));
    cc1_ = el.bstar * cc2;
    double cc3 = 0.0;
    if (ecco > 1.0e-4) {
        cc3 = -2.0 * coef * tsi * kJ3oJ2 * no_unkozai_ * sinio / ecco;
    }
    x1mth2_ = 1.0 - cosio2;
    cc4_ = 2.0 * no_unkozai_ * coef1 * ao * omeosq *
           (eta_ * (2.0 + 0.5 * etasq) + ecco * (0.5 + 2.0 * etasq) -
            kJ2 * tsi / (ao * psisq) *
                (-3.0 * con41_ * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
                 0.75 * x1mth2_ * (2.0 * etasq - eeta * (1.0 + etasq)) *
                     std::cos(2.0 * el.arg_perigee_rad)));
    cc5_ = 2.0 * coef1 * ao * omeosq * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);
    const double cosio4 = cosio2 * cosio2;
    const double temp1 = 1.5 * kJ2 * pinvsq * no_unkozai_;
    const double temp2 = 0.5 * temp1 * kJ2 * pinvsq;
    const double temp3 = -0.46875 * kJ4 * pinvsq * pinvsq * no_unkozai_;
    mdot_ = no_unkozai_ + 0.5 * temp1 * rteosq * con41_ +
            0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
    argpdot_ = -0.5 * temp1 * con42 +
               0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
               temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
    const double xhdot1 = -temp1 * cosio;
    nodedot_ = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                         2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                            cosio;
    omgcof_ = el.bstar * cc3 * std::cos(el.arg_perigee_rad);
    xmcof_ = 0.0;
    if (ecco > 1.0e-4) xmcof_ = -x2o3 * coef * el.bstar / eeta;
    nodecf_ = 3.5 * omeosq * xhdot1 * cc1_;
    t2cof_ = 1.5 * cc1_;
    // Avoid division by zero for inclination = 180 deg.
    if (std::abs(cosio + 1.0) > 1.5e-12) {
        xlcof_ = -0.25 * kJ3oJ2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio);
    } else {
        xlcof_ = -0.25 * kJ3oJ2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12;
    }
    aycof_ = -0.5 * kJ3oJ2 * sinio;
    delmo_ = std::pow(1.0 + eta_ * std::cos(el.mean_anomaly_rad), 3.0);
    sinmao_ = std::sin(el.mean_anomaly_rad);
    x7thm1_ = 7.0 * cosio2 - 1.0;

    if (isimp_ != 1) {
        const double cc1sq = cc1_ * cc1_;
        d2_ = 4.0 * ao * tsi * cc1sq;
        const double temp = d2_ * tsi * cc1_ / 3.0;
        d3_ = (17.0 * ao + sfour) * temp;
        d4_ = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * cc1_;
        t3cof_ = d2_ + 2.0 * cc1sq;
        t4cof_ = 0.25 * (3.0 * d3_ + cc1_ * (12.0 * d2_ + 10.0 * cc1sq));
        t5cof_ = 0.2 * (3.0 * d4_ + 12.0 * cc1_ * d3_ + 6.0 * d2_ * d2_ +
                        15.0 * cc1sq * (2.0 * d2_ + cc1sq));
    }
}

StateVector Sgp4::propagate_minutes(double t) const {
    const Sgp4Elements& el = elements_;

    // ---- secular gravity and atmospheric drag ----
    const double xmdf = el.mean_anomaly_rad + mdot_ * t;
    const double argpdf = el.arg_perigee_rad + argpdot_ * t;
    const double nodedf = el.raan_rad + nodedot_ * t;
    double argpm = argpdf;
    double mm = xmdf;
    const double t2 = t * t;
    double nodem = nodedf + nodecf_ * t2;
    double tempa = 1.0 - cc1_ * t;
    double tempe = el.bstar * cc4_ * t;
    double templ = t2cof_ * t2;

    if (isimp_ != 1) {
        const double delomg = omgcof_ * t;
        const double delm =
            xmcof_ * (std::pow(1.0 + eta_ * std::cos(xmdf), 3.0) - delmo_);
        const double temp = delomg + delm;
        mm = xmdf + temp;
        argpm = argpdf - temp;
        const double t3 = t2 * t;
        const double t4 = t3 * t;
        tempa = tempa - d2_ * t2 - d3_ * t3 - d4_ * t4;
        tempe = tempe + el.bstar * cc5_ * (std::sin(mm) - sinmao_);
        templ = templ + t3cof_ * t3 + t4 * (t4cof_ + t * t5cof_);
    }

    const double nm = no_unkozai_;
    double em = el.eccentricity;
    const double inclm = el.inclination_rad;

    const double am = std::pow(kXke / nm, 2.0 / 3.0) * tempa * tempa;
    const double nm_new = kXke / std::pow(am, 1.5);
    em -= tempe;
    if (em >= 1.0 || em < -0.001) throw std::runtime_error("sgp4: eccentricity diverged");
    if (am < 0.95) throw std::runtime_error("sgp4: semi-major axis decayed");
    if (em < 1.0e-6) em = 1.0e-6;
    mm += no_unkozai_ * templ;
    double xlm = mm + argpm + nodem;
    const double emsq = em * em;

    nodem = wrap_two_pi(nodem);
    argpm = wrap_two_pi(argpm);
    xlm = wrap_two_pi(xlm);
    mm = wrap_two_pi(xlm - argpm - nodem);

    const double sinim = std::sin(inclm);
    const double cosim = std::cos(inclm);

    // ---- long-period periodics ----
    const double axnl = em * std::cos(argpm);
    double temp = 1.0 / (am * (1.0 - emsq));
    const double aynl = em * std::sin(argpm) + temp * aycof_;
    const double xl = mm + argpm + nodem + temp * xlcof_ * axnl;

    // ---- Kepler's equation (modified for the long-period terms) ----
    const double u = wrap_two_pi(xl - nodem);
    double eo1 = u;
    double tem5 = 9999.9;
    double sineo1 = 0.0, coseo1 = 0.0;
    for (int ktr = 1; std::abs(tem5) >= 1.0e-12 && ktr <= 10; ++ktr) {
        sineo1 = std::sin(eo1);
        coseo1 = std::cos(eo1);
        tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
        tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
        if (std::abs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
        eo1 += tem5;
    }

    // ---- short-period periodics ----
    const double ecose = axnl * coseo1 + aynl * sineo1;
    const double esine = axnl * sineo1 - aynl * coseo1;
    const double el2 = axnl * axnl + aynl * aynl;
    const double pl = am * (1.0 - el2);
    if (pl < 0.0) throw std::runtime_error("sgp4: semi-latus rectum negative");

    const double rl = am * (1.0 - ecose);
    const double rdotl = std::sqrt(am) * esine / rl;
    const double rvdotl = std::sqrt(pl) / rl;
    const double betal = std::sqrt(1.0 - el2);
    temp = esine / (1.0 + betal);
    const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
    const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
    double su = std::atan2(sinu, cosu);
    const double sin2u = (cosu + cosu) * sinu;
    const double cos2u = 1.0 - 2.0 * sinu * sinu;
    temp = 1.0 / pl;
    const double temp1 = 0.5 * kJ2 * temp;
    const double temp2 = temp1 * temp;

    const double mrt =
        rl * (1.0 - 1.5 * temp2 * betal * con41_) + 0.5 * temp1 * x1mth2_ * cos2u;
    su -= 0.25 * temp2 * x7thm1_ * sin2u;
    const double xnode = nodem + 1.5 * temp2 * cosim * sin2u;
    const double xinc = inclm + 1.5 * temp2 * cosim * sinim * cos2u;
    const double mvt = rdotl - nm_new * temp1 * x1mth2_ * sin2u / kXke;
    const double rvdot =
        rvdotl + nm_new * temp1 * (x1mth2_ * cos2u + 1.5 * con41_) / kXke;

    // ---- orientation vectors and final state ----
    const double sinsu = std::sin(su);
    const double cossu = std::cos(su);
    const double snod = std::sin(xnode);
    const double cnod = std::cos(xnode);
    const double sini = std::sin(xinc);
    const double cosi = std::cos(xinc);
    const double xmx = -snod * cosi;
    const double xmy = cnod * cosi;
    const double ux = xmx * sinsu + cnod * cossu;
    const double uy = xmy * sinsu + snod * cossu;
    const double uz = sini * sinsu;
    const double vx = xmx * cossu - cnod * sinsu;
    const double vy = xmy * cossu - snod * sinsu;
    const double vz = sini * cossu;

    if (mrt < 1.0) throw std::runtime_error("sgp4: satellite decayed below the surface");

    const double vkmpersec = kRe * kXke / 60.0;
    StateVector sv;
    sv.position_km = {mrt * kRe * ux, mrt * kRe * uy, mrt * kRe * uz};
    sv.velocity_km_per_s = {(mvt * ux + rvdot * vx) * vkmpersec,
                            (mvt * uy + rvdot * vy) * vkmpersec,
                            (mvt * uz + rvdot * vz) * vkmpersec};
    return sv;
}

StateVector Sgp4::propagate(const JulianDate& at) const {
    return propagate_minutes(at.seconds_since(elements_.epoch) / 60.0);
}

Sgp4Elements sgp4_elements_from_kepler(const KeplerianElements& kep, double bstar) {
    Sgp4Elements el;
    el.epoch = kep.epoch;
    el.bstar = bstar;
    el.inclination_rad = kep.inclination_deg * kDegToRad;
    el.raan_rad = kep.raan_deg * kDegToRad;
    el.eccentricity = kep.eccentricity;
    el.arg_perigee_rad = kep.arg_perigee_deg * kDegToRad;
    el.mean_anomaly_rad = kep.mean_anomaly_deg * kDegToRad;
    el.mean_motion_rad_per_min = kep.mean_motion_rad_per_s() * 60.0;
    return el;
}

}  // namespace hypatia::orbit
