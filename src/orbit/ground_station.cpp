#include "src/orbit/ground_station.hpp"

// GroundStation is header-only today; this translation unit anchors the
// library target and keeps a stable place for future non-inline logic.
