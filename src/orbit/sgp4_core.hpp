// The SGP4 arithmetic itself, shared by every kernel (DESIGN.md §11).
//
// sgp4_propagate_core() is a line-for-line factoring of the original
// Sgp4::propagate_minutes(): same expressions, same evaluation order,
// same libm calls. Because the scalar class and the SoA batch kernel
// both inline THIS function (and the baseline x86-64 / aarch64 builds
// carry no FMA contraction for plain C++ expressions), their outputs
// are bit-identical by construction; tests/test_sgp4_differential.cpp
// pins that equivalence.
//
// sgp4_propagate_fast() is the batched hot path for zero-drag elements
// (every generated TLE in this repo: bstar == 0). It skips the drag
// blocks whose coefficients are exactly zero and substitutes init-time
// precomputations (Sgp4FastConsts) for per-call recomputation of
// t-invariant subexpressions. Each substitution is an algebraic
// identity at the bit level:
//   * cc1 == d2 == d3 == d4 == 0  =>  tempa == 1.0 exactly, so
//     am = pow(xke/no, 2/3) * tempa * tempa reduces to the init-time
//     pow value, and nm = xke / pow(am, 1.5) is likewise constant;
//   * bstar == 0 (with omgcof/xmcof/t2cof..t5cof zero)  =>  tempe and
//     templ are (signed) zeros, so em = ecco - tempe == ecco and
//     mm = xmdf + no_unkozai * templ == xmdf bit for bit (x + 0.0 == x
//     for every x except x == -0.0, which cannot arise from the sums
//     of real element values and secular rates involved);
//   * sin/cos of the constant inclination and 1/(am*(1-em^2)) move to
//     init time unchanged — same expression, same inputs, same bits;
//   * paired sin/cos of one argument go through sincos(), which glibc
//     evaluates with the same kernels as the separate calls (verified
//     bit-exact over millions of samples by the differential test).
// The differential harness runs both paths over the same elements and
// byte-compares, so any platform where one of these identities failed
// to hold would fail loudly, not drift silently.
#pragma once

#include <cmath>

#include "src/orbit/sgp4.hpp"

namespace hypatia::orbit {

namespace sgp4_detail {

constexpr double kTwoPi = 2.0 * M_PI;

// WGS72 gravity constants in SGP4's canonical units.
constexpr double kRe = Wgs72::kEarthRadiusKm;
constexpr double kJ2 = Wgs72::kJ2;
constexpr double kJ3 = Wgs72::kJ3;
constexpr double kJ4 = Wgs72::kJ4;
constexpr double kJ3oJ2 = kJ3 / kJ2;
inline const double kXke = 60.0 / std::sqrt(kRe * kRe * kRe / Wgs72::kMuKm3PerS2);

inline double wrap_two_pi(double x) {
    x = std::fmod(x, kTwoPi);
    if (x < 0.0) x += kTwoPi;
    return x;
}

/// sin and cos of one argument in a single libm call. glibc's sincos
/// shares its reduction and polynomial kernels with sin/cos, so the
/// results are bit-identical to the separate calls — the property the
/// kernels rely on and the differential harness verifies.
inline void sincos_pair(double x, double& s, double& c) {
#if defined(__GLIBC__) || defined(__linux__)
    ::sincos(x, &s, &c);
#else
    s = std::sin(x);
    c = std::cos(x);
#endif
}

}  // namespace sgp4_detail

/// The kernel tail from Kepler's equation onward, shared between the
/// reference path and the zero-drag fast path (identical code from this
/// point — the fast path only changes how the inputs were produced, not
/// the downstream arithmetic). `nm` here is the post-drag mean motion
/// (kXke / am^1.5), `am` the post-drag semi-major axis.
///
/// With kWithVelocity = false the velocity-only terms (rdotl, rvdotl,
/// mvt, rvdot, the v orientation vector) are skipped entirely and
/// out.velocity_km_per_s is left untouched; the position arithmetic is
/// the same expressions in the same order, so positions stay
/// bit-identical to the full evaluation. Cache warming — which stores
/// positions only — runs this variant.
/// con41/x1mth2/x7thm1 are passed as plain doubles (rather than via
/// Sgp4Consts) so the SoA batch loops can feed column values without
/// touching the AoS struct — same values, same bits either way.
template <bool kWithVelocity = true>
inline Sgp4Status sgp4_finish_core(double con41, double x1mth2, double x7thm1,
                                   double nm, double am, double sinim, double cosim,
                                   double axnl, double aynl, double xl, double nodem,
                                   double inclm, StateVector& out) {
    using namespace sgp4_detail;

    // ---- Kepler's equation (modified for the long-period terms) ----
    const double u = wrap_two_pi(xl - nodem);
    double eo1 = u;
    double tem5 = 9999.9;
    double sineo1 = 0.0, coseo1 = 0.0;
    for (int ktr = 1; std::abs(tem5) >= 1.0e-12 && ktr <= 10; ++ktr) {
        sincos_pair(eo1, sineo1, coseo1);
        tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
        tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
        if (std::abs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
        eo1 += tem5;
    }

    // ---- short-period periodics ----
    const double ecose = axnl * coseo1 + aynl * sineo1;
    const double esine = axnl * sineo1 - aynl * coseo1;
    const double el2 = axnl * axnl + aynl * aynl;
    const double pl = am * (1.0 - el2);
    if (pl < 0.0) return Sgp4Status::kNegativeSemiLatus;

    const double rl = am * (1.0 - ecose);
    double rdotl = 0.0, rvdotl = 0.0;
    if constexpr (kWithVelocity) {
        rdotl = std::sqrt(am) * esine / rl;
        rvdotl = std::sqrt(pl) / rl;
    }
    const double betal = std::sqrt(1.0 - el2);
    double temp = esine / (1.0 + betal);
    const double sinu = am / rl * (sineo1 - aynl - axnl * temp);
    const double cosu = am / rl * (coseo1 - axnl + aynl * temp);
    double su = std::atan2(sinu, cosu);
    const double sin2u = (cosu + cosu) * sinu;
    const double cos2u = 1.0 - 2.0 * sinu * sinu;
    temp = 1.0 / pl;
    const double temp1 = 0.5 * kJ2 * temp;
    const double temp2 = temp1 * temp;

    const double mrt =
        rl * (1.0 - 1.5 * temp2 * betal * con41) + 0.5 * temp1 * x1mth2 * cos2u;
    su -= 0.25 * temp2 * x7thm1 * sin2u;
    const double xnode = nodem + 1.5 * temp2 * cosim * sin2u;
    const double xinc = inclm + 1.5 * temp2 * cosim * sinim * cos2u;

    // ---- orientation vectors and final state ----
    double sinsu, cossu;
    sincos_pair(su, sinsu, cossu);
    double snod, cnod;
    sincos_pair(xnode, snod, cnod);
    double sini, cosi;
    sincos_pair(xinc, sini, cosi);
    const double xmx = -snod * cosi;
    const double xmy = cnod * cosi;
    const double ux = xmx * sinsu + cnod * cossu;
    const double uy = xmy * sinsu + snod * cossu;
    const double uz = sini * sinsu;

    if (mrt < 1.0) return Sgp4Status::kDecayed;

    out.position_km = {mrt * kRe * ux, mrt * kRe * uy, mrt * kRe * uz};
    if constexpr (kWithVelocity) {
        const double mvt = rdotl - nm * temp1 * x1mth2 * sin2u / kXke;
        const double rvdot =
            rvdotl + nm * temp1 * (x1mth2 * cos2u + 1.5 * con41) / kXke;
        const double vx = xmx * cossu - cnod * sinsu;
        const double vy = xmy * cossu - snod * sinsu;
        const double vz = sini * cossu;
        const double vkmpersec = kRe * kXke / 60.0;
        out.velocity_km_per_s = {(mvt * ux + rvdot * vx) * vkmpersec,
                                 (mvt * uy + rvdot * vy) * vkmpersec,
                                 (mvt * uz + rvdot * vz) * vkmpersec};
    }
    return Sgp4Status::kOk;
}

/// The reference propagation: the exact arithmetic of the original
/// Sgp4::propagate_minutes, with the four failure throws turned into
/// early status returns (same checks, same order). `out` is valid only
/// when the return is kOk.
inline Sgp4Status sgp4_propagate_core(const Sgp4Consts& k, double t, StateVector& out) {
    using namespace sgp4_detail;
    const Sgp4Elements& el = k.el;

    // ---- secular gravity and atmospheric drag ----
    const double xmdf = el.mean_anomaly_rad + k.mdot * t;
    const double argpdf = el.arg_perigee_rad + k.argpdot * t;
    const double nodedf = el.raan_rad + k.nodedot * t;
    double argpm = argpdf;
    double mm = xmdf;
    const double t2 = t * t;
    double nodem = nodedf + k.nodecf * t2;
    double tempa = 1.0 - k.cc1 * t;
    double tempe = el.bstar * k.cc4 * t;
    double templ = k.t2cof * t2;

    if (k.isimp != 1) {
        const double delomg = k.omgcof * t;
        const double delm =
            k.xmcof * (std::pow(1.0 + k.eta * std::cos(xmdf), 3.0) - k.delmo);
        const double temp = delomg + delm;
        mm = xmdf + temp;
        argpm = argpdf - temp;
        const double t3 = t2 * t;
        const double t4 = t3 * t;
        tempa = tempa - k.d2 * t2 - k.d3 * t3 - k.d4 * t4;
        tempe = tempe + el.bstar * k.cc5 * (std::sin(mm) - k.sinmao);
        templ = templ + k.t3cof * t3 + t4 * (k.t4cof + t * k.t5cof);
    }

    const double nm = k.no_unkozai;
    double em = el.eccentricity;
    const double inclm = el.inclination_rad;

    const double am = std::pow(kXke / nm, 2.0 / 3.0) * tempa * tempa;
    const double nm_new = kXke / std::pow(am, 1.5);
    em -= tempe;
    if (em >= 1.0 || em < -0.001) return Sgp4Status::kEccentricityDiverged;
    if (am < 0.95) return Sgp4Status::kSemiMajorDecayed;
    if (em < 1.0e-6) em = 1.0e-6;
    mm += k.no_unkozai * templ;
    double xlm = mm + argpm + nodem;
    const double emsq = em * em;

    nodem = wrap_two_pi(nodem);
    argpm = wrap_two_pi(argpm);
    xlm = wrap_two_pi(xlm);
    mm = wrap_two_pi(xlm - argpm - nodem);

    double sinim, cosim;
    sincos_pair(inclm, sinim, cosim);

    // ---- long-period periodics ----
    double sin_argpm, cos_argpm;
    sincos_pair(argpm, sin_argpm, cos_argpm);
    const double axnl = em * cos_argpm;
    const double temp = 1.0 / (am * (1.0 - emsq));
    const double aynl = em * sin_argpm + temp * k.aycof;
    const double xl = mm + argpm + nodem + temp * k.xlcof * axnl;

    return sgp4_finish_core(k.con41, k.x1mth2, k.x7thm1, nm_new, am, sinim, cosim,
                            axnl, aynl, xl, nodem, inclm, out);
}

/// True when every drag-derived coefficient is exactly zero, i.e. the
/// fast path's algebraic identities apply. bstar == 0 forces cc1, and
/// cc1 == 0 forces d2/d3/d4/t2cof..t5cof/nodecf, but the flag checks
/// each coefficient it relies on rather than the derivation chain.
inline bool sgp4_zero_drag(const Sgp4Consts& k) {
    return k.el.bstar == 0.0 && k.cc1 == 0.0 && k.d2 == 0.0 && k.d3 == 0.0 &&
           k.d4 == 0.0 && k.omgcof == 0.0 && k.xmcof == 0.0 && k.nodecf == 0.0 &&
           k.t2cof == 0.0 && k.t3cof == 0.0 && k.t4cof == 0.0 && k.t5cof == 0.0;
}

/// t-invariant subexpressions of the zero-drag propagation, hoisted to
/// init time. Every field is computed by the *same expression* the
/// reference path evaluates per call, so substituting it is bit-exact.
struct Sgp4FastConsts {
    double am = 0;       // pow(xke/no_unkozai, 2/3) (tempa == 1 exactly)
    double nm = 0;       // xke / pow(am, 1.5)
    double em = 0;       // ecco, clamped at 1e-6 like the per-call path
    double sinim = 0;    // sin(inclo)
    double cosim = 0;    // cos(inclo)
    double aycof_t = 0;  // (1/(am*(1-em^2))) * aycof
    double xlcof_t = 0;  // (1/(am*(1-em^2))) * xlcof
};

inline Sgp4FastConsts sgp4_fast_consts(const Sgp4Consts& k) {
    using namespace sgp4_detail;
    Sgp4FastConsts f;
    f.am = std::pow(kXke / k.no_unkozai, 2.0 / 3.0);
    f.nm = kXke / std::pow(f.am, 1.5);
    f.em = k.el.eccentricity;
    if (f.em < 1.0e-6) f.em = 1.0e-6;
    sincos_pair(k.el.inclination_rad, f.sinim, f.cosim);
    const double emsq = f.em * f.em;
    const double temp = 1.0 / (f.am * (1.0 - emsq));
    f.aycof_t = temp * k.aycof;
    f.xlcof_t = temp * k.xlcof;
    return f;
}

/// Zero-drag propagation: valid only when sgp4_zero_drag(k) holds.
/// Produces bit-identical results to sgp4_propagate_core (see the
/// header comment for the identity argument; the differential harness
/// enforces it). The em >= 1 / am < 0.95 decay checks are vacuous here:
/// both quantities are init-time constants already validated by
/// sgp4_init_consts, exactly as the reference path (whose tempa/tempe
/// are identically 1 and 0) can never trip them for these elements.
/// kWithVelocity = false propagates the position only (velocity output
/// untouched), see sgp4_finish_core.
template <bool kWithVelocity = true>
inline Sgp4Status sgp4_propagate_fast(const Sgp4Consts& k, const Sgp4FastConsts& f,
                                      double t, StateVector& out) {
    using namespace sgp4_detail;
    const Sgp4Elements& el = k.el;

    // Secular rates only: with every drag coefficient zero, the
    // reference path's tempa/tempe/templ corrections vanish exactly.
    const double xmdf = el.mean_anomaly_rad + k.mdot * t;
    const double argpdf = el.arg_perigee_rad + k.argpdot * t;
    const double nodedf = el.raan_rad + k.nodedot * t;

    const double nodem = wrap_two_pi(nodedf);
    const double argpm = wrap_two_pi(argpdf);
    const double xlm = wrap_two_pi(xmdf + argpdf + nodedf);
    const double mm = wrap_two_pi(xlm - argpm - nodem);

    // ---- long-period periodics (hoisted temp terms) ----
    double sin_argpm, cos_argpm;
    sincos_pair(argpm, sin_argpm, cos_argpm);
    const double axnl = f.em * cos_argpm;
    const double aynl = f.em * sin_argpm + f.aycof_t;
    const double xl = mm + argpm + nodem + f.xlcof_t * axnl;

    return sgp4_finish_core<kWithVelocity>(k.con41, k.x1mth2, k.x7thm1, f.nm, f.am,
                                           f.sinim, f.cosim, axnl, aynl, xl, nodem,
                                           el.inclination_rad, out);
}

}  // namespace hypatia::orbit
