#include "src/orbit/coords.hpp"

#include <cmath>

namespace hypatia::orbit {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;
}  // namespace

Vec3 geodetic_to_ecef(const Geodetic& g) {
    const double lat = g.latitude_deg * kDegToRad;
    const double lon = g.longitude_deg * kDegToRad;
    const double a = Wgs72::kEarthRadiusKm;
    const double f = Wgs72::kFlattening;
    const double e2 = f * (2.0 - f);
    const double sin_lat = std::sin(lat);
    const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
    return {
        (n + g.altitude_km) * std::cos(lat) * std::cos(lon),
        (n + g.altitude_km) * std::cos(lat) * std::sin(lon),
        (n * (1.0 - e2) + g.altitude_km) * sin_lat,
    };
}

Geodetic ecef_to_geodetic(const Vec3& ecef) {
    const double a = Wgs72::kEarthRadiusKm;
    const double f = Wgs72::kFlattening;
    const double e2 = f * (2.0 - f);
    const double p = std::hypot(ecef.x, ecef.y);
    double lat = std::atan2(ecef.z, p * (1.0 - e2));  // initial guess
    double alt = 0.0;
    for (int i = 0; i < 10; ++i) {
        const double sin_lat = std::sin(lat);
        const double n = a / std::sqrt(1.0 - e2 * sin_lat * sin_lat);
        alt = p / std::cos(lat) - n;
        const double new_lat = std::atan2(ecef.z, p * (1.0 - e2 * n / (n + alt)));
        if (std::abs(new_lat - lat) < 1e-12) {
            lat = new_lat;
            break;
        }
        lat = new_lat;
    }
    return {lat * kRadToDeg, std::atan2(ecef.y, ecef.x) * kRadToDeg, alt};
}

Vec3 teme_to_ecef(const Vec3& teme, const JulianDate& jd) {
    const double theta = gmst_radians(jd);
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    // ECEF = Rz(gmst) * TEME
    return {c * teme.x + s * teme.y, -s * teme.x + c * teme.y, teme.z};
}

LookAngles look_angles(const Geodetic& observer_geo, const Vec3& observer_ecef,
                       const Vec3& target_ecef) {
    const double lat = observer_geo.latitude_deg * kDegToRad;
    const double lon = observer_geo.longitude_deg * kDegToRad;
    const Vec3 delta = target_ecef - observer_ecef;

    // Rotate the ECEF delta into the local SEZ (south-east-zenith) frame.
    const double sin_lat = std::sin(lat), cos_lat = std::cos(lat);
    const double sin_lon = std::sin(lon), cos_lon = std::cos(lon);
    const double south = sin_lat * cos_lon * delta.x + sin_lat * sin_lon * delta.y -
                         cos_lat * delta.z;
    const double east = -sin_lon * delta.x + cos_lon * delta.y;
    const double zenith = cos_lat * cos_lon * delta.x + cos_lat * sin_lon * delta.y +
                          sin_lat * delta.z;

    LookAngles out;
    out.range_km = delta.norm();
    out.elevation_deg = std::asin(zenith / out.range_km) * kRadToDeg;
    out.azimuth_deg = std::atan2(east, -south) * kRadToDeg;  // 0=N, 90=E
    if (out.azimuth_deg < 0.0) out.azimuth_deg += 360.0;
    return out;
}

double great_circle_distance_km(const Geodetic& a, const Geodetic& b) {
    const double lat1 = a.latitude_deg * kDegToRad;
    const double lat2 = b.latitude_deg * kDegToRad;
    const double dlat = lat2 - lat1;
    const double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
    const double h = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                     std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) *
                         std::sin(dlon / 2.0);
    // Mean Earth radius consistent with WGS72 (a * (1 - f/3)).
    const double r = Wgs72::kEarthRadiusKm * (1.0 - Wgs72::kFlattening / 3.0);
    return 2.0 * r * std::asin(std::min(1.0, std::sqrt(h)));
}

double geodesic_rtt_s(const Geodetic& a, const Geodetic& b) {
    return 2.0 * great_circle_distance_km(a, b) / kSpeedOfLightKmPerS;
}

}  // namespace hypatia::orbit
