// Two-line element (TLE) generation and parsing.
//
// The paper (section 3.1) generates TLEs for not-yet-launched satellites
// from the Keplerian elements in the FCC/ITU filings, in the WGS72
// standard, and validates that elements -> TLE -> propagation round-trips.
// This module is that utility: it formats standards-compliant TLE line
// pairs (with checksums) and parses them back.
#pragma once

#include <string>

#include "src/orbit/kepler.hpp"
#include "src/orbit/sgp4.hpp"
#include "src/orbit/time.hpp"

namespace hypatia::orbit {

/// A parsed / to-be-formatted two-line element set.
struct Tle {
    int satellite_number = 0;
    std::string name;                 // optional "line 0" title
    std::string international_designator = "00001A";
    JulianDate epoch;
    double mean_motion_dot = 0.0;     // rev/day^2 / 2 (TLE field convention)
    double mean_motion_ddot = 0.0;    // rev/day^3 / 6
    double bstar = 0.0;               // 1 / earth radii
    double inclination_deg = 0.0;
    double raan_deg = 0.0;
    double eccentricity = 0.0;
    double arg_perigee_deg = 0.0;
    double mean_anomaly_deg = 0.0;
    double mean_motion_rev_per_day = 0.0;
    int revolution_number = 0;

    /// Formats the two 69-character lines (without the title line).
    std::string line1() const;
    std::string line2() const;

    /// SGP4 initialization inputs in TLE units.
    Sgp4Elements to_sgp4_elements() const;

    /// Builds a TLE from Keplerian elements (the paper's Kepler->TLE step).
    static Tle from_kepler(const KeplerianElements& kep, int satellite_number,
                           const std::string& name = "");

    /// Parses a line pair. Throws std::invalid_argument on malformed input:
    /// truncated lines, checksum mismatches, non-numeric columns, and
    /// out-of-range elements (inclination outside [0, 180], angles outside
    /// [0, 360], non-positive mean motion, day-of-year outside [1, 367]).
    /// The message names the offending field and quotes its raw text.
    static Tle parse(const std::string& line1, const std::string& line2);
};

/// TLE checksum: sum of digits plus one per '-' sign, modulo 10.
int tle_checksum(const std::string& line_without_checksum);

}  // namespace hypatia::orbit
