// Quickstart: the smallest useful Hypatia program.
//
// Builds Kuiper's K1 shell with two cities as ground stations, runs a
// 30-second packet-level simulation with a ping probe between them, and
// prints how the end-end RTT evolves as the satellites move.
//
//   ./quickstart [--src "Tokyo"] [--dst "Seoul"] [--duration-s 30]
#include <cstdio>

#include "src/core/leo_network.hpp"
#include "src/sim/ping_app.hpp"
#include "src/topology/cities.hpp"
#include "src/util/cli.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const std::string src_name = cli.get_string("src", "Tokyo");
    const std::string dst_name = cli.get_string("dst", "Seoul");
    const double duration_s = cli.get_double("duration-s", 30.0);

    // 1. Describe the scenario: a Table-1 shell plus ground stations.
    core::Scenario scenario;
    scenario.shell = topo::shell_by_name("kuiper_k1");
    scenario.ground_stations = {
        {0, src_name, topo::city_by_name(src_name).geodetic()},
        {1, dst_name, topo::city_by_name(dst_name).geodetic()},
    };

    // 2. Build the network: satellites (SGP4), +Grid ISLs, GSL devices.
    core::LeoNetwork leo(scenario);
    leo.add_destination(0);  // route toward both endpoints
    leo.add_destination(1);

    // 3. Attach an application: a ping every 100 ms.
    sim::PingApp::Config ping_cfg;
    ping_cfg.flow_id = 1;
    ping_cfg.src_node = leo.gs_node(0);
    ping_cfg.dst_node = leo.gs_node(1);
    ping_cfg.interval = 100 * kNsPerMs;
    ping_cfg.stop = seconds_to_ns(duration_s);
    sim::PingApp ping(leo.network(), ping_cfg);

    // 4. Run. Forwarding state refreshes every 100 ms (scenario default).
    leo.run(seconds_to_ns(duration_s) + kNsPerSec);

    // 5. Report.
    std::printf("%s -> %s over %s (%d satellites)\n", src_name.c_str(),
                dst_name.c_str(), scenario.shell.name.c_str(),
                leo.num_satellites());
    std::printf("%8s %10s\n", "t (s)", "RTT (ms)");
    for (const auto& s : ping.samples()) {
        if (static_cast<std::uint64_t>(ns_to_seconds(s.send_time) * 10) % 10 != 0) {
            continue;  // print once per second
        }
        if (s.replied) {
            std::printf("%8.1f %10.3f\n", ns_to_seconds(s.send_time), ns_to_ms(s.rtt));
        } else {
            std::printf("%8.1f %10s\n", ns_to_seconds(s.send_time), "lost");
        }
    }
    std::printf("replies: %llu / %llu\n",
                static_cast<unsigned long long>(ping.replies()),
                static_cast<unsigned long long>(ping.sent()));
    return 0;
}
