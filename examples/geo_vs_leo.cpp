// GEO vs LEO: the motivation of the paper's introduction, quantified.
// Compares the bent-pipe RTT through a geostationary satellite
// (HughesNet/Viasat-class service, section 2.4) against the LEO ISL path
// over Kuiper K1, for a set of city pairs.
//
//   ./geo_vs_leo [--pairs "Miami:Bogota,London:New York"] [--geo-sats 12]
#include <cstdio>
#include <sstream>

#include "src/orbit/coords.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/routing/shortest_path.hpp"
#include "src/topology/cities.hpp"
#include "src/topology/shell_group.hpp"
#include "src/util/cli.hpp"

using namespace hypatia;

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

double pair_rtt_ms(const route::Graph& graph, int src_gs, int dst_gs) {
    const auto tree = route::dijkstra_to(graph, graph.gs_node(dst_gs));
    const double d = tree.distance_km[static_cast<std::size_t>(graph.gs_node(src_gs))];
    if (d == route::kInfDistance) return -1.0;
    return 2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const int geo_sats = static_cast<int>(cli.get_long("geo-sats", 12));
    const auto pair_specs = split(
        cli.get_string("pairs",
                       "Miami:Bogota,London:New York,Manila:Dalian,Madrid:Lagos"),
        ',');

    std::vector<orbit::GroundStation> gses;
    std::vector<route::GsPair> pairs;
    auto gs_index = [&](const std::string& name) {
        for (const auto& g : gses) {
            if (g.name() == name) return g.id();
        }
        const auto city = topo::city_by_name(name);
        gses.emplace_back(static_cast<int>(gses.size()), city.name(), city.geodetic());
        return static_cast<int>(gses.size()) - 1;
    };
    for (const auto& spec : pair_specs) {
        const auto parts = split(spec, ':');
        pairs.push_back({gs_index(parts.at(0)), gs_index(parts.at(1))});
    }

    // GEO: a ring of bent-pipe satellites, no ISLs.
    const topo::Constellation geo(topo::geostationary_shell(geo_sats),
                                  topo::default_epoch());
    const topo::SatelliteMobility geo_mob(geo);
    const auto geo_graph = route::build_snapshot(geo_mob, {}, gses, 0);

    // LEO: Kuiper K1 with +Grid ISLs.
    const topo::Constellation k1(topo::shell_by_name("kuiper_k1"),
                                 topo::default_epoch());
    const topo::SatelliteMobility k1_mob(k1);
    const auto isls = topo::build_isls(k1, topo::IslPattern::kPlusGrid);
    const auto leo_graph = route::build_snapshot(k1_mob, isls, gses, 0);

    std::printf("%-28s %12s %12s %10s %8s\n", "pair", "GEO RTT(ms)", "LEO RTT(ms)",
                "geodesic", "speedup");
    for (const auto& p : pairs) {
        const double geo_ms = pair_rtt_ms(geo_graph, p.src_gs, p.dst_gs);
        const double leo_ms = pair_rtt_ms(leo_graph, p.src_gs, p.dst_gs);
        const double geodesic_ms =
            orbit::geodesic_rtt_s(gses[static_cast<std::size_t>(p.src_gs)].geodetic(),
                                  gses[static_cast<std::size_t>(p.dst_gs)].geodetic()) *
            1e3;
        const std::string name = gses[static_cast<std::size_t>(p.src_gs)].name() + ":" +
                                 gses[static_cast<std::size_t>(p.dst_gs)].name();
        if (geo_ms < 0 || leo_ms < 0) {
            std::printf("%-28s %12s\n", name.c_str(), "unreachable");
            continue;
        }
        std::printf("%-28s %12.1f %12.1f %10.1f %7.1fx\n", name.c_str(), geo_ms,
                    leo_ms, geodesic_ms, geo_ms / leo_ms);
    }
    std::printf("\nGEO orbits at 35,786 km cost ~500 ms bent-pipe RTT regardless of\n"
                "distance; LEO at 630 km stays within a small factor of the\n"
                "geodesic — the premise of the new constellations (paper sec. 1).\n");
    return 0;
}
