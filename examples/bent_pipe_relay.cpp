// Bent-pipe relay demo (Appendix A of the paper): connect two cities over
// a constellation *without* inter-satellite links, bouncing through a
// grid of ground-station relays, and compare against ISL connectivity.
//
//   ./bent_pipe_relay [--src Paris --dst Moscow] [--duration-s 60]
//                     [--grid-pitch-deg 5]
#include <algorithm>
#include <cstdio>

#include "src/core/leo_network.hpp"
#include "src/topology/cities.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/viz/path_export.hpp"

using namespace hypatia;

namespace {

core::Scenario make_scenario(const std::string& src, const std::string& dst,
                             bool use_isls, double pitch_deg) {
    core::Scenario s;
    s.shell = topo::shell_by_name("kuiper_k1");
    const auto a = topo::city_by_name(src).geodetic();
    const auto b = topo::city_by_name(dst).geodetic();
    int id = 0;
    s.ground_stations.emplace_back(id++, src, a);
    s.ground_stations.emplace_back(id++, dst, b);
    if (use_isls) return s;

    s.isl_pattern = topo::IslPattern::kNone;
    // Relay grid over the corridor's bounding box, padded by 10 degrees.
    const double lat_lo = std::min(a.latitude_deg, b.latitude_deg) - 10.0;
    const double lat_hi = std::max(a.latitude_deg, b.latitude_deg) + 10.0;
    const double lon_lo = std::min(a.longitude_deg, b.longitude_deg) - 10.0;
    const double lon_hi = std::max(a.longitude_deg, b.longitude_deg) + 10.0;
    for (double lat = lat_lo; lat <= lat_hi; lat += pitch_deg) {
        for (double lon = lon_lo; lon <= lon_hi; lon += pitch_deg) {
            s.relay_gs_indices.push_back(id);
            s.ground_stations.emplace_back(id++, "relay", orbit::Geodetic{lat, lon, 0});
        }
    }
    return s;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const std::string src = cli.get_string("src", "Paris");
    const std::string dst = cli.get_string("dst", "Moscow");
    const TimeNs duration = seconds_to_ns(cli.get_double("duration-s", 60.0));
    const double pitch = cli.get_double("grid-pitch-deg", 5.0);

    for (const bool use_isls : {true, false}) {
        core::Scenario scenario = make_scenario(src, dst, use_isls, pitch);
        core::LeoNetwork leo(scenario);
        leo.add_destination(1);
        util::RunningStats rtt_ms;
        int unreachable = 0;
        leo.on_fstate_update = [&](TimeNs) {
            const double d = leo.current_distance_km(0, 1);
            if (d == route::kInfDistance) {
                ++unreachable;
                return;
            }
            rtt_ms.add(2.0 * d / orbit::kSpeedOfLightKmPerS * 1e3);
        };
        leo.run(duration);

        const auto path = leo.current_path(0, 1);
        const auto resolved = viz::resolve_path(path, leo.mobility(),
                                                scenario.ground_stations,
                                                leo.orbit_time(duration));
        std::printf("%-9s RTT %6.2f..%6.2f ms (mean %6.2f), unreachable %d steps, "
                    "%zu relays available\n",
                    use_isls ? "ISL" : "bent-pipe", rtt_ms.min(), rtt_ms.max(),
                    rtt_ms.mean(), unreachable, scenario.relay_gs_indices.size());
        std::printf("  final path: %s\n", viz::path_to_string(resolved).c_str());
    }
    return 0;
}
