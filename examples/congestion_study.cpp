// Congestion-control study: run one long TCP flow between two cities on
// a LEO shell, with either NewReno or Vegas, and report how the window,
// RTT and delivery rate respond to satellite motion — the section 4.2
// experiment of the paper as a reusable tool.
//
//   ./congestion_study [--cc newreno|vegas] [--shell kuiper_k1]
//                      [--src "Rio de Janeiro"] [--dst "Saint Petersburg"]
//                      [--duration-s 120]
#include <cstdio>

#include "src/core/experiment.hpp"
#include "src/topology/cities.hpp"
#include "src/util/cli.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const std::string cc = cli.get_string("cc", "newreno");
    const std::string shell = cli.get_string("shell", "kuiper_k1");
    const std::string src_name = cli.get_string("src", "Rio de Janeiro");
    const std::string dst_name = cli.get_string("dst", "Saint Petersburg");
    const TimeNs duration = seconds_to_ns(cli.get_double("duration-s", 120.0));

    core::Scenario scenario;
    scenario.shell = topo::shell_by_name(shell);
    scenario.ground_stations = {
        {0, src_name, topo::city_by_name(src_name).geodetic()},
        {1, dst_name, topo::city_by_name(dst_name).geodetic()},
    };
    core::LeoNetwork leo(scenario);
    auto flows = core::attach_tcp_flows(leo, {{0, 1}}, cc);
    flows[0]->enable_delivery_bins(kNsPerSec, duration);
    leo.run(duration);
    const auto& flow = *flows[0];

    std::printf("%s, %s -> %s, %s, %.0f s\n", shell.c_str(), src_name.c_str(),
                dst_name.c_str(), cc.c_str(), ns_to_seconds(duration));
    std::printf("%6s %10s %12s %10s\n", "t(s)", "cwnd", "rate(Mbps)", "rtt(ms)");

    const auto rates = flow.delivery_rate_bps();
    std::size_t cwnd_i = 0, rtt_i = 0;
    const auto& cwnd_trace = flow.cwnd_trace();
    const auto& rtt_trace = flow.rtt_trace();
    for (std::size_t sec = 0; sec < rates.size(); sec += 5) {
        const TimeNs t = static_cast<TimeNs>(sec) * kNsPerSec;
        while (cwnd_i + 1 < cwnd_trace.size() && cwnd_trace[cwnd_i + 1].t <= t) ++cwnd_i;
        while (rtt_i + 1 < rtt_trace.size() && rtt_trace[rtt_i + 1].t <= t) ++rtt_i;
        std::printf("%6zu %10.1f %12.2f %10.2f\n", sec,
                    cwnd_trace.empty() ? 0.0 : cwnd_trace[cwnd_i].cwnd,
                    rates[sec] / 1e6,
                    rtt_trace.empty() ? 0.0 : ns_to_ms(rtt_trace[rtt_i].rtt));
    }
    std::printf("\ndelivered %.1f MB, fast retransmits %llu, RTOs %llu, "
                "dupACKs %llu\n",
                static_cast<double>(flow.delivered_bytes()) / 1e6,
                static_cast<unsigned long long>(flow.fast_retransmits()),
                static_cast<unsigned long long>(flow.timeouts()),
                static_cast<unsigned long long>(flow.dup_acks_received()));
    return 0;
}
