// TLE generation tool — the original Hypatia's satgen step as a
// standalone utility: writes a standards-compliant TLE file (title line
// + two element lines per satellite) for any Table-1 shell, and verifies
// the round trip by re-parsing and re-propagating every entry.
//
//   ./gen_tles [--shell kuiper_k1] [--out kuiper_k1.tle]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/orbit/sgp4.hpp"
#include "src/orbit/tle.hpp"
#include "src/topology/constellation.hpp"
#include "src/util/cli.hpp"

using namespace hypatia;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const std::string shell_name = cli.get_string("shell", "kuiper_k1");
    const std::string out_path = cli.get_string("out", shell_name + ".tle");

    const topo::Constellation c(topo::shell_by_name(shell_name),
                                topo::default_epoch());
    {
        std::ofstream out(out_path);
        for (const auto& sat : c.satellites()) {
            out << sat.tle.name << "\n" << sat.tle.line1() << "\n"
                << sat.tle.line2() << "\n";
        }
    }

    // Verify: re-read the file, parse every TLE, propagate, and compare
    // against the constellation's own propagators.
    std::ifstream in(out_path);
    std::string name, l1, l2;
    int verified = 0;
    double worst_km = 0.0;
    while (std::getline(in, name) && std::getline(in, l1) && std::getline(in, l2)) {
        const auto parsed = orbit::Tle::parse(l1, l2);
        const orbit::Sgp4 prop(parsed.to_sgp4_elements());
        const auto& sat = c.satellite(verified);
        const auto a = prop.propagate_minutes(30.0).position_km;
        const auto b = sat.sgp4->propagate_minutes(30.0).position_km;
        worst_km = std::max(worst_km, a.distance_to(b));
        ++verified;
    }
    std::printf("%s: wrote %d TLEs to %s\n", shell_name.c_str(), verified,
                out_path.c_str());
    std::printf("round-trip check: re-parsed all %d, worst position deviation "
                "after 30 min propagation: %.3f km (TLE field quantization)\n",
                verified, worst_km);
    return worst_km < 3.0 && verified == c.num_satellites() ? 0 : 1;
}
