// Constellation comparison: evaluate any set of Table-1 shells on the
// same city pairs — minimum/maximum RTT, geodesic stretch, path churn —
// the section 5 methodology of the paper as a command-line tool.
//
//   ./constellation_compare [--shells starlink_s1,kuiper_k1,telesat_t1]
//                           [--duration-s 60] [--step-ms 500]
//                           [--pairs "Paris:Luanda,New York:London"]
#include <cstdio>
#include <sstream>

#include "src/orbit/coords.hpp"
#include "src/routing/path_analysis.hpp"
#include "src/topology/cities.hpp"
#include "src/util/cli.hpp"

using namespace hypatia;

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const auto shells =
        split(cli.get_string("shells", "starlink_s1,kuiper_k1,telesat_t1"), ',');
    const TimeNs duration = seconds_to_ns(cli.get_double("duration-s", 60.0));
    const TimeNs step = ms_to_ns(cli.get_double("step-ms", 500.0));
    const auto pair_specs = split(
        cli.get_string("pairs",
                       "Paris:Luanda,New York:London,Manila:Dalian,Tokyo:Sydney"),
        ',');

    // Build the GS list and pair indices from the pair specs.
    std::vector<orbit::GroundStation> gses;
    std::vector<route::GsPair> pairs;
    auto gs_index = [&](const std::string& name) {
        for (const auto& g : gses) {
            if (g.name() == name) return g.id();
        }
        const auto city = topo::city_by_name(name);
        gses.emplace_back(static_cast<int>(gses.size()), city.name(), city.geodetic());
        return static_cast<int>(gses.size()) - 1;
    };
    for (const auto& spec : pair_specs) {
        const auto parts = split(spec, ':');
        if (parts.size() != 2) {
            std::fprintf(stderr, "bad pair spec: %s\n", spec.c_str());
            return 1;
        }
        pairs.push_back({gs_index(parts[0]), gs_index(parts[1])});
    }

    std::printf("%-14s %-28s %9s %9s %8s %8s %7s\n", "shell", "pair", "min(ms)",
                "max(ms)", "stretch", "changes", "hops");
    for (const auto& shell_name : shells) {
        const topo::Constellation c(topo::shell_by_name(shell_name),
                                    topo::default_epoch());
        const topo::SatelliteMobility mob(c);
        const auto isls = topo::build_isls(c, topo::IslPattern::kPlusGrid);
        route::AnalysisOptions opt;
        opt.t_end = duration;
        opt.step = step;
        const auto res = route::analyze_pairs(mob, isls, gses, pairs, opt);
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            const auto& st = res.pair_stats[i];
            const auto& a = gses[static_cast<std::size_t>(pairs[i].src_gs)];
            const auto& b = gses[static_cast<std::size_t>(pairs[i].dst_gs)];
            const std::string pair_name = a.name() + ":" + b.name();
            if (!st.ever_reachable()) {
                std::printf("%-14s %-28s %9s\n", shell_name.c_str(), pair_name.c_str(),
                            "n/a");
                continue;
            }
            const double geo = orbit::geodesic_rtt_s(a.geodetic(), b.geodetic());
            std::printf("%-14s %-28s %9.1f %9.1f %8.2f %8d %4d-%-3d\n",
                        shell_name.c_str(), pair_name.c_str(), st.min_rtt_s * 1e3,
                        st.max_rtt_s * 1e3, st.max_rtt_s / geo, st.path_changes,
                        st.min_hops, st.max_hops);
        }
    }
    return 0;
}
