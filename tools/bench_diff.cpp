// bench_diff: compares a freshly produced benchmark/manifest JSON
// against a committed baseline and fails (exit 1) when a metric
// regresses beyond its tolerance — the CI guard that keeps
// BENCH_routing.json / BENCH_fault.json / run_manifest.json honest.
//
// Usage:
//   bench_diff <baseline.json> <fresh.json>
//       [--metric path[:tol][:higher|lower|both]]...
//       [--default-tolerance 0.10] [--list]
//
// With no --metric arguments every numeric leaf present in BOTH files
// is compared symmetrically ("both") under the default tolerance. A
// --metric argument restricts the check to the named metrics and lets
// each carry its own tolerance and direction:
//   higher — higher is better; only a drop below (1 - tol) * base fails
//   lower  — lower is better; only a rise above (1 + tol) * base fails
//   both   — any relative deviation beyond tol fails (default)
//
// Paths are dot-separated; numeric segments index into arrays
// ("points.3.unreachable_fraction"). Object keys that themselves
// contain dots (the manifest metric names like "flowsim.flows_
// completed") are matched exact-key-first at every step, so
// "metrics.flowsim.flows_completed" resolves. Metrics missing from
// one side are reported and fail the run (a renamed metric must touch
// the baseline on purpose); relative error against a zero baseline is
// treated as exact-match-required.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace {

using hypatia::obs::json::Value;

enum class Direction { kBoth, kHigherIsBetter, kLowerIsBetter };

struct MetricSpec {
    std::string path;
    double tolerance = 0.10;
    Direction direction = Direction::kBoth;
};

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
        std::exit(2);
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// Resolves a dotted path against a JSON tree. At every step the
/// longest exact key match wins before the path is split on '.', so
/// keys that contain dots ("flowsim.flows_completed") resolve without
/// any escaping. Numeric segments index arrays.
const Value* resolve(const Value& root, const std::string& path) {
    if (path.empty()) return &root;
    if (root.is_object()) {
        // Longest prefix of the path that is an exact key, scanning
        // from the full path down — "a.b.c" tries "a.b.c", "a.b", "a".
        std::string prefix = path;
        while (true) {
            if (root.contains(prefix)) {
                const std::string rest =
                    prefix.size() == path.size() ? "" : path.substr(prefix.size() + 1);
                const Value* hit = resolve(root.at(prefix), rest);
                if (hit != nullptr) return hit;
            }
            const std::size_t dot = prefix.rfind('.');
            if (dot == std::string::npos) return nullptr;
            prefix.resize(dot);
        }
    }
    if (root.is_array()) {
        const std::size_t dot = path.find('.');
        const std::string head = path.substr(0, dot);
        char* end = nullptr;
        const long index = std::strtol(head.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || index < 0 ||
            static_cast<std::size_t>(index) >= root.as_array().size()) {
            return nullptr;
        }
        const std::string rest = dot == std::string::npos ? "" : path.substr(dot + 1);
        return resolve(root.as_array()[static_cast<std::size_t>(index)], rest);
    }
    return nullptr;
}

/// Collects every numeric leaf as path -> value ("a.b.0.c" form).
void collect_numeric_leaves(const Value& v, const std::string& prefix,
                            std::map<std::string, double>& out) {
    if (v.is_number()) {
        out[prefix] = v.as_number();
        return;
    }
    if (v.is_object()) {
        for (const auto& [key, child] : v.as_object()) {
            collect_numeric_leaves(child, prefix.empty() ? key : prefix + "." + key,
                                   out);
        }
        return;
    }
    if (v.is_array()) {
        const auto& arr = v.as_array();
        for (std::size_t i = 0; i < arr.size(); ++i) {
            collect_numeric_leaves(arr[i],
                                   prefix.empty() ? std::to_string(i)
                                                  : prefix + "." + std::to_string(i),
                                   out);
        }
    }
}

Direction parse_direction(const std::string& token) {
    if (token == "higher") return Direction::kHigherIsBetter;
    if (token == "lower") return Direction::kLowerIsBetter;
    if (token == "both") return Direction::kBoth;
    std::fprintf(stderr, "bench_diff: bad direction '%s' (higher|lower|both)\n",
                 token.c_str());
    std::exit(2);
}

/// "path[:tol][:direction]" — the last one/two ':'-separated suffixes
/// are recognized as tolerance/direction only when they parse as such,
/// so metric names containing ':' stay addressable.
MetricSpec parse_metric_arg(const std::string& arg, double default_tolerance) {
    MetricSpec spec;
    spec.tolerance = default_tolerance;
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = arg.find(':', start);
        parts.push_back(arg.substr(start, colon - start));
        if (colon == std::string::npos) break;
        start = colon + 1;
    }
    // Pop direction, then tolerance, when the trailing parts look like
    // them.
    if (parts.size() > 1 && (parts.back() == "higher" || parts.back() == "lower" ||
                             parts.back() == "both")) {
        spec.direction = parse_direction(parts.back());
        parts.pop_back();
    }
    if (parts.size() > 1) {
        char* end = nullptr;
        const double tol = std::strtod(parts.back().c_str(), &end);
        if (end != nullptr && *end == '\0' && tol >= 0.0) {
            spec.tolerance = tol;
            parts.pop_back();
        }
    }
    std::string path = parts[0];
    for (std::size_t i = 1; i < parts.size(); ++i) path += ":" + parts[i];
    spec.path = path;
    return spec;
}

struct Outcome {
    int checked = 0;
    int failed = 0;
};

void check_metric(const MetricSpec& spec, double base, double fresh, Outcome& out) {
    ++out.checked;
    bool ok;
    double rel = 0.0;
    if (base == 0.0) {
        ok = fresh == 0.0;  // no relative scale: require exact
        rel = fresh == 0.0 ? 0.0 : HUGE_VAL;
    } else {
        rel = (fresh - base) / std::fabs(base);
        switch (spec.direction) {
            case Direction::kHigherIsBetter: ok = rel >= -spec.tolerance; break;
            case Direction::kLowerIsBetter: ok = rel <= spec.tolerance; break;
            case Direction::kBoth:
            default: ok = std::fabs(rel) <= spec.tolerance; break;
        }
    }
    const char* dir = spec.direction == Direction::kHigherIsBetter ? "higher"
                      : spec.direction == Direction::kLowerIsBetter ? "lower"
                                                                    : "both";
    std::printf("%s %-58s base=%-14.6g fresh=%-14.6g drift=%+8.2f%% tol=%g/%s\n",
                ok ? "  ok  " : " FAIL ", spec.path.c_str(), base, fresh, rel * 100.0,
                spec.tolerance, dir);
    if (!ok) ++out.failed;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<std::string> positional;
    std::vector<std::string> metric_args;
    double default_tolerance = 0.10;
    bool list_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--metric" && i + 1 < argc) {
            metric_args.emplace_back(argv[++i]);
        } else if (arg == "--default-tolerance" && i + 1 < argc) {
            default_tolerance = std::strtod(argv[++i], nullptr);
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: bench_diff <baseline.json> <fresh.json>\n"
                "         [--metric path[:tol][:higher|lower|both]]...\n"
                "         [--default-tolerance 0.10] [--list]\n");
            return 0;
        } else {
            positional.push_back(arg);
        }
    }
    if (list_only && positional.size() == 1) {
        const Value doc = Value::parse(read_file(positional[0]));
        std::map<std::string, double> leaves;
        collect_numeric_leaves(doc, "", leaves);
        for (const auto& [path, value] : leaves) {
            std::printf("%s = %.12g\n", path.c_str(), value);
        }
        return 0;
    }
    if (positional.size() != 2) {
        std::fprintf(stderr, "bench_diff: expected <baseline.json> <fresh.json>\n");
        return 2;
    }

    const Value baseline = Value::parse(read_file(positional[0]));
    const Value fresh = Value::parse(read_file(positional[1]));

    Outcome out;
    int missing = 0;
    if (metric_args.empty()) {
        // Full sweep: every numeric leaf present in both documents.
        std::map<std::string, double> base_leaves;
        std::map<std::string, double> fresh_leaves;
        collect_numeric_leaves(baseline, "", base_leaves);
        collect_numeric_leaves(fresh, "", fresh_leaves);
        for (const auto& [path, base_value] : base_leaves) {
            const auto it = fresh_leaves.find(path);
            if (it == fresh_leaves.end()) continue;
            MetricSpec spec;
            spec.path = path;
            spec.tolerance = default_tolerance;
            check_metric(spec, base_value, it->second, out);
        }
    } else {
        for (const std::string& arg : metric_args) {
            const MetricSpec spec = parse_metric_arg(arg, default_tolerance);
            const Value* base_v = resolve(baseline, spec.path);
            const Value* fresh_v = resolve(fresh, spec.path);
            if (base_v == nullptr || !base_v->is_number() || fresh_v == nullptr ||
                !fresh_v->is_number()) {
                std::printf(" MISS  %-58s %s%s\n", spec.path.c_str(),
                            (base_v == nullptr || !base_v->is_number())
                                ? "absent-in-baseline "
                                : "",
                            (fresh_v == nullptr || !fresh_v->is_number())
                                ? "absent-in-fresh"
                                : "");
                ++missing;
                continue;
            }
            check_metric(spec, base_v->as_number(), fresh_v->as_number(), out);
        }
    }

    std::printf("bench_diff: %d checked, %d failed, %d missing\n", out.checked,
                out.failed, missing);
    return (out.failed == 0 && missing == 0) ? 0 : 1;
}
